(* lib/runtime: Chase-Lev deque, work-stealing pool, fork-join scheduler. *)

let test_deque_sequential () =
  let q = Runtime.Deque.create ~capacity:2 () in
  (* LIFO at the owner end *)
  for i = 1 to 100 do
    Runtime.Deque.push q i
  done;
  Alcotest.(check int) "size" 100 (Runtime.Deque.size q);
  Alcotest.(check (option int)) "pop" (Some 100) (Runtime.Deque.pop q);
  (* FIFO at the steal end *)
  Alcotest.(check (option int)) "steal" (Some 1) (Runtime.Deque.steal q);
  Alcotest.(check (option int)) "steal2" (Some 2) (Runtime.Deque.steal q);
  let rec drain acc = match Runtime.Deque.pop q with
    | Some v -> drain (v :: acc)
    | None -> acc
  in
  let rest = drain [] in
  Alcotest.(check int) "drained" 97 (List.length rest);
  Alcotest.(check (option int)) "empty pop" None (Runtime.Deque.pop q);
  Alcotest.(check (option int)) "empty steal" None (Runtime.Deque.steal q)

(* Multi-domain stress: one owner pushing/popping, several thieves
   stealing concurrently.  Every pushed token must be taken exactly once:
   the sum over all takers equals the sum pushed (no loss, no dup). *)
let test_deque_steal_stress () =
  let q = Runtime.Deque.create ~capacity:4 () in
  let n = 20_000 and thieves = 3 in
  let stop = Atomic.make false in
  let stolen_sum = Atomic.make 0 in
  let stolen_cnt = Atomic.make 0 in
  let thief () =
    let sum = ref 0 and cnt = ref 0 in
    while not (Atomic.get stop) do
      match Runtime.Deque.steal q with
      | Some v ->
          sum := !sum + v;
          incr cnt
      | None -> Domain.cpu_relax ()
    done;
    (* final sweep after the owner is done *)
    let continue = ref true in
    while !continue do
      match Runtime.Deque.steal q with
      | Some v ->
          sum := !sum + v;
          incr cnt
      | None -> continue := false
    done;
    ignore (Atomic.fetch_and_add stolen_sum !sum);
    ignore (Atomic.fetch_and_add stolen_cnt !cnt)
  in
  let doms = Array.init thieves (fun _ -> Domain.spawn thief) in
  let own_sum = ref 0 and own_cnt = ref 0 in
  for i = 1 to n do
    Runtime.Deque.push q i;
    (* pop some of our own work back to exercise the owner/thief race on
       the last element *)
    if i mod 3 = 0 then
      match Runtime.Deque.pop q with
      | Some v ->
          own_sum := !own_sum + v;
          incr own_cnt
      | None -> ()
  done;
  Atomic.set stop true;
  Array.iter Domain.join doms;
  (* anything left belongs to the owner *)
  let continue = ref true in
  while !continue do
    match Runtime.Deque.pop q with
    | Some v ->
        own_sum := !own_sum + v;
        incr own_cnt
    | None -> continue := false
  done;
  Alcotest.(check int) "every task taken exactly once" n
    (!own_cnt + Atomic.get stolen_cnt);
  Alcotest.(check int) "token sum preserved" (n * (n + 1) / 2)
    (!own_sum + Atomic.get stolen_sum)

let with_pool ?(domains = 4) f =
  let pool = Runtime.Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) (fun () ->
      Runtime.Pool.run pool (fun () -> f pool))

(* The same sum must come out of every chunking strategy. *)
let test_parallel_for_determinism () =
  let n = 50_000 in
  let expect = n * (n - 1) / 2 in
  let chunkings =
    [ Runtime.Sched.Static 1; Runtime.Sched.Static 4; Runtime.Sched.Static 64;
      Runtime.Sched.Guided 1000; Runtime.Sched.Guided 17 ]
  in
  with_pool (fun pool ->
      List.iter
        (fun chunking ->
          let acc = Atomic.make 0 in
          Runtime.Sched.parallel_for ~chunking pool ~lo:0 ~hi:n (fun i ->
              ignore (Atomic.fetch_and_add acc i));
          Alcotest.(check int) "sum" expect (Atomic.get acc))
        chunkings)

let test_parallel_for_ranges_cover () =
  with_pool (fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      let mu = Mutex.create () in
      Runtime.Sched.parallel_for_ranges ~chunking:(Runtime.Sched.Static 7) pool
        ~lo:0 ~hi:n (fun l h ->
          Mutex.lock mu;
          for i = l to h - 1 do
            hits.(i) <- hits.(i) + 1
          done;
          Mutex.unlock mu);
      Array.iteri
        (fun i c -> if c <> 1 then Alcotest.failf "index %d visited %d times" i c)
        hits)

(* Recursive fork-join task graph through async/await. *)
let test_async_await_fib () =
  let rec fib_seq k = if k < 2 then k else fib_seq (k - 1) + fib_seq (k - 2) in
  with_pool (fun pool ->
      let rec fib k =
        if k < 8 then fib_seq k
        else
          let a = Runtime.Sched.async pool (fun () -> fib (k - 1)) in
          let b = fib (k - 2) in
          Runtime.Sched.await pool a + b
      in
      Alcotest.(check int) "fib 22" (fib_seq 22) (fib 22))

let test_await_reraises () =
  with_pool (fun pool ->
      let fut =
        Runtime.Sched.async pool (fun () -> raise (Invalid_argument "boom"))
      in
      Alcotest.check_raises "await re-raises" (Invalid_argument "boom")
        (fun () -> Runtime.Sched.await pool fut))

(* Shutdown must drain in-flight fire-and-forget tasks, not drop them. *)
let test_shutdown_in_flight () =
  let pool = Runtime.Pool.create ~domains:4 () in
  let done_cnt = Atomic.make 0 in
  let n = 500 in
  Runtime.Pool.run pool (fun () ->
      for _ = 1 to n do
        Runtime.Pool.submit pool (fun () ->
            ignore (Atomic.fetch_and_add done_cnt 1))
      done);
  Runtime.Pool.shutdown pool;
  Alcotest.(check int) "all tasks ran before shutdown returned" n
    (Atomic.get done_cnt)

(* Submissions from a domain that is not a pool executor go through the
   inject queue and still run. *)
let test_external_submit () =
  let pool = Runtime.Pool.create ~domains:2 () in
  let hit = Atomic.make 0 in
  let outsider =
    Domain.spawn (fun () ->
        let fut =
          Runtime.Sched.async pool (fun () ->
              ignore (Atomic.fetch_and_add hit 1);
              41)
        in
        1 + Runtime.Sched.await pool fut)
  in
  let v = Domain.join outsider in
  Runtime.Pool.shutdown pool;
  Alcotest.(check int) "ran once" 1 (Atomic.get hit);
  Alcotest.(check int) "value" 42 v

let test_pool_stats () =
  let pool = Runtime.Pool.create ~domains:3 () in
  Runtime.Pool.run pool (fun () ->
      let futs =
        List.init 64 (fun i ->
            Runtime.Sched.async pool (fun () ->
                (* enough work that other executors get a chance to steal *)
                let s = ref 0 in
                for j = 0 to 20_000 do
                  s := !s + ((i * j) land 7)
                done;
                !s))
      in
      Runtime.Sched.await_all pool futs);
  Runtime.Pool.shutdown pool;
  Alcotest.(check int) "every task accounted" 64 (Runtime.Pool.total_tasks pool);
  let stats = Runtime.Pool.stats pool in
  Alcotest.(check int) "one stats slot per executor" 3 (Array.length stats);
  let busy = Array.fold_left (fun a s -> a + s.Runtime.Pool.busy_ns) 0 stats in
  Alcotest.(check bool) "busy time recorded" true (busy > 0);
  Alcotest.(check bool) "imbalance >= 1" true (Runtime.Pool.imbalance pool >= 1.0)

(* ---- Par_eval: transformed programs on real domains vs the sequential
   interpreter ---- *)

module P = Transform.Parallelize
module S = Discovery.Suggestion

let run_seq prog =
  let r = Mil.Interp.run ~instrument:false prog in
  (r.Mil.Interp.result, r.Mil.Interp.final_globals)

let check_equiv name prog ~domains (transformed : Mil.Ast.program) =
  let seq_result, seq_globals = run_seq prog in
  let pr = Mil.Par_eval.run ~domains transformed in
  Alcotest.(check int) (name ^ ": result") seq_result pr.Mil.Par_eval.result;
  (* the transform may add helper globals (__dx_rdy hand-off flags); only
     the original's globals are observable state *)
  List.iter
    (fun (n, a) ->
      match List.assoc_opt n pr.Mil.Par_eval.final_globals with
      | Some a' -> Alcotest.(check (array int)) (name ^ ": global " ^ n) a a'
      | None -> Alcotest.failf "%s: global %s missing" name n)
    seq_globals

let transform_first prog =
  let report = S.analyze ~threads:4 prog in
  match P.apply_first ~chunks:4 report with
  | Ok (t, _) -> t
  | Error skipped ->
      Alcotest.failf "nothing transformable: %s"
        (String.concat "; " (List.map snd skipped))

let find_workload name =
  List.find
    (fun (w : Workloads.Registry.t) -> w.Workloads.Registry.name = name)
    (Workloads.Textbook.all @ Workloads.Bots.all)

(* A sequential program (no Par at all) must evaluate identically. *)
let test_par_eval_sequential () =
  let prog =
    Workloads.Registry.program ~size:300 (find_workload "histogram")
  in
  check_equiv "histogram untransformed" prog ~domains:2 prog

(* DOALL chunking with privatization + reduction merges, on the pool. *)
let test_par_eval_doall () =
  List.iter
    (fun (name, size) ->
      let prog = Workloads.Registry.program ~size (find_workload name) in
      let t = transform_first prog in
      check_equiv name prog ~domains:2 t.P.transformed;
      check_equiv (name ^ " d1") prog ~domains:1 t.P.transformed)
    [ ("histogram", 400); ("dotprod", 600); ("matmul", 8) ]

(* bots fib through the fork-join transform: a real recursive task graph
   whose [Par] arms run as async/await tasks. *)
let test_par_eval_fib () =
  let prog = Workloads.Registry.program ~size:13 (find_workload "fib") in
  let t = transform_first prog in
  check_equiv "fib" prog ~domains:4 t.P.transformed;
  check_equiv "fib d1" prog ~domains:1 t.P.transformed

(* DOACROSS fission: the serialized hand-off loop busy-waits under a lock,
   so its arms must land on dedicated domains (never pool workers). *)
let test_par_eval_doacross () =
  let open Mil.Builder in
  let prog =
    number
      (program
         ~globals:[ garray "a" 128; garray "b" 128; gscalar "s" 1 ]
         ~entry:"main" "pipe"
         [ func "main"
             [ for_ "i" (i 0) (i 128) [ seti "a" (v "i") (v "i" + i 3) ];
               for_ "i" (i 0) (i 128)
                 [ decl "t" (("a".%[v "i"] * i 5) % i 97);
                   set "s" ((v "s" * i 3 + v "t") % i 1009);
                   seti "b" (v "i") (v "s") ];
               return (v "s" + "b".%[i 100]) ] ])
  in
  let report = S.analyze ~threads:4 prog in
  let suggestion =
    match
      List.find_opt
        (fun (s : S.t) ->
          match s.S.kind with S.Sdoacross _ -> true | _ -> false)
        report.S.suggestions
    with
    | Some s -> s
    | None -> Alcotest.fail "no DOACROSS suggestion"
  in
  match P.apply ~chunks:3 report suggestion with
  | Error e -> Alcotest.failf "DOACROSS transform failed: %s" e
  | Ok t -> check_equiv "doacross" prog ~domains:3 t.P.transformed

(* Runtime errors inside a task surface, and don't wedge the run. *)
let test_par_eval_error_propagates () =
  let open Mil.Builder in
  let prog =
    number
      (program ~globals:[ garray "a" 8 ] ~entry:"main" "oob"
         [ func "main"
             [ par [ [ seti "a" (i 99) (i 1) ]; [ seti "a" (i 0) (i 1) ] ];
               return (i 0) ] ])
  in
  match Mil.Par_eval.run ~domains:2 prog with
  | _ -> Alcotest.fail "expected Runtime_error"
  | exception Mil.Interp.Runtime_error _ -> ()

let tests =
  [ Alcotest.test_case "deque: owner LIFO / thief FIFO" `Quick
      test_deque_sequential;
    Alcotest.test_case "deque: multi-domain steal stress" `Quick
      test_deque_steal_stress;
    Alcotest.test_case "parallel_for: sum invariant across chunkings" `Quick
      test_parallel_for_determinism;
    Alcotest.test_case "parallel_for_ranges: exact cover" `Quick
      test_parallel_for_ranges_cover;
    Alcotest.test_case "async/await: recursive fib" `Quick test_async_await_fib;
    Alcotest.test_case "async/await: exception propagation" `Quick
      test_await_reraises;
    Alcotest.test_case "pool: shutdown drains in-flight tasks" `Quick
      test_shutdown_in_flight;
    Alcotest.test_case "pool: external submit via inject queue" `Quick
      test_external_submit;
    Alcotest.test_case "pool: stats accounting" `Quick test_pool_stats;
    Alcotest.test_case "par_eval: sequential program equivalence" `Quick
      test_par_eval_sequential;
    Alcotest.test_case "par_eval: DOALL transforms match interp" `Quick
      test_par_eval_doall;
    Alcotest.test_case "par_eval: fib fork-join matches interp" `Quick
      test_par_eval_fib;
    Alcotest.test_case "par_eval: DOACROSS hand-offs match interp" `Quick
      test_par_eval_doacross;
    Alcotest.test_case "par_eval: task errors propagate" `Quick
      test_par_eval_error_propagates ]
