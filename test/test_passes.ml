(* Tests for lib/mil/pass.ml: the optimization-pass framework.

   The contract under test (see pass.mli): every pipeline is
   observation-preserving, surviving statements keep their [line] (so an
   optimized program's depfile lines are a subset of the seed's), the
   driver reaches a fixpoint, and per-pass Obs counters account for every
   rewrite. Plus the chunk-clamp regression: parallelizing a 2-iteration
   loop with --chunks 8 must produce 2 well-formed arms, not 8 with 6
   empty ranges. *)

open Mil
module Pass = Mil.Pass
module V = Transform.Validate

let run_exn ?passes p =
  match Pass.run ?passes p with
  | Ok r -> r
  | Error e -> Alcotest.failf "Pass.run: %s" e

(* A program engineered so each pass enables the next: folding the
   condition exposes a dead branch to simplify, whose removal leaves
   [t] unused for DCE — convergence takes several rounds. *)
let cascade_prog =
  let open Builder in
  number
    (program ~entry:"main" "cascade"
       [ func "main"
           [ decl "a" (i 2 + i 3);
             decl "t" (i 0);
             when_ (v "a" - i 5) [ set "t" (v "t" + i 1) ];
             decl "u" (i 7 * i 6);
             return (v "a") ] ])

let test_fixpoint_cascade () =
  let r = run_exn cascade_prog in
  Alcotest.(check bool) "terminated before max_rounds" true (r.Pass.rounds < 8);
  Alcotest.(check bool) "did rewrite" true (r.Pass.changes > 0);
  (* A fixpoint is a fixpoint: re-running the pipeline changes nothing. *)
  let r2 = run_exn r.Pass.program in
  Alcotest.(check int) "idempotent" 0 r2.Pass.changes;
  (* The cascade actually fired end to end: the dead branch and the unused
     decls are gone, only the return (folded to a literal) remains. *)
  let main =
    List.find (fun (f : Ast.func) -> f.fname = "main") r.Pass.program.funcs
  in
  Alcotest.(check int) "main reduced to its return" 1 (List.length main.body)

let test_counter_conservation () =
  Obs.reset ();
  Obs.enable ();
  let r = run_exn cascade_prog in
  let per_pass_total = List.fold_left (fun a (_, n) -> a + n) 0 r.Pass.per_pass in
  Alcotest.(check int) "per-pass changes sum to the total" r.Pass.changes
    per_pass_total;
  Alcotest.(check int) "pipeline.rounds counter matches the report"
    r.Pass.rounds
    (Obs.counter_value "pass.pipeline.rounds");
  List.iter
    (fun (p, n) ->
      if n > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "pass.%s.fired clicked" p)
          true
          (Obs.counter_value (Printf.sprintf "pass.%s.fired" p) > 0))
    r.Pass.per_pass;
  Obs.reset ()

let test_pass_selection () =
  (* Only DCE selected: the unused decl goes, the foldable expression in a
     live statement stays unfolded. *)
  let open Builder in
  let p =
    number
      (program ~entry:"main" "sel"
         [ func "main"
             [ decl "dead" (i 1); decl "live" (i 2 + i 3); return (v "live") ] ])
  in
  let r = run_exn ~passes:[ "dce" ] p in
  let src = Pretty.render_program r.Pass.program in
  Alcotest.(check bool) "dead decl removed" false
    (Astring_contains.contains src "dead")
  ;
  Alcotest.(check bool) "live expression left unfolded" true
    (Astring_contains.contains src "2 + 3");
  (* Selection respects list order within a round: fold before dce folds the
     live decl too. *)
  let r2 = run_exn ~passes:[ "fold"; "dce" ] p in
  let src2 = Pretty.render_program r2.Pass.program in
  Alcotest.(check bool) "fold+dce folds the live decl" true
    (Astring_contains.contains src2 "5");
  (* Unknown names are an error, not a silent no-op. *)
  match Pass.run ~passes:[ "fold"; "nope" ] p with
  | Error e ->
      Alcotest.(check bool) "error names the bad pass" true
        (Astring_contains.contains e "nope")
  | Ok _ -> Alcotest.fail "unknown pass accepted"

(* Line identity: profile the seed and the optimized program; every line
   that appears in the optimized depfile must exist in the seed's (DCE and
   folding may only remove lines, never renumber survivors). *)
let test_depfile_line_subset () =
  let p =
    let open Builder in
    number
      (program ~globals:[ garray "a" 64; gscalar "s" 0 ] ~entry:"main" "lines"
         [ func "main"
             [ decl "dead1" (i 3 * i 4);
               for_ "i" (i 0) (i 64)
                 [ decl "dead2" (i 9); seti "a" (v "i") (v "i" + i 1) ];
               for_ "i" (i 0) (i 64) [ set "s" (v "s" + "a".%[v "i"]) ];
               return (v "s") ] ])
  in
  let dep_lines prog =
    let res = Profiler.Serial.profile prog in
    List.fold_left
      (fun acc ((d : Profiler.Dep.t), _) ->
        let add l acc = if l > 0 then l :: acc else acc in
        add d.sink_line (add d.src_line acc))
      [] (Profiler.Dep.Set_.to_list res.deps)
    |> List.sort_uniq compare
  in
  let r = run_exn p in
  Alcotest.(check bool) "something was optimized" true (r.Pass.changes > 0);
  let seed_lines = dep_lines p and opt_lines = dep_lines r.Pass.program in
  List.iter
    (fun l ->
      if not (List.mem l seed_lines) then
        Alcotest.failf "optimized depfile line %d absent from seed depfile" l)
    opt_lines

(* Observation preservation + refusal policy on a program with [Par]: the
   restructuring passes must refuse (clicking pass.<name>.refused), the
   count-neutral ones may still fold, and observations are unchanged. *)
let test_par_refusal () =
  let p =
    let open Builder in
    number
      (program ~globals:[ gscalar "x" 0; gscalar "y" 0 ] ~entry:"main" "par"
         [ func "main"
             [ decl "dead" (i 1);
               par [ [ set "x" (i 2 + i 3) ]; [ set "y" (i 4 * i 5) ] ];
               return (v "x" + v "y") ] ])
  in
  Obs.reset ();
  Obs.enable ();
  let r = run_exn p in
  Alcotest.(check bool) "dce refused on a Par program" true
    (Obs.counter_value "pass.dce.refused" > 0);
  let src = Pretty.render_program r.Pass.program in
  Alcotest.(check bool) "dead decl NOT removed (refused, not rewritten)" true
    (Astring_contains.contains src "dead");
  Alcotest.(check (list string))
    "observations preserved" []
    (V.diff_observations (V.observe p) (V.observe r.Pass.program));
  Obs.reset ()

(* Whole-registry invariants that don't need the interpreter: the optimized
   program still renders to parseable, render-stable source. *)
let test_registry_render_roundtrip () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let seed = Workloads.Registry.program w in
      let r = run_exn seed in
      let src = Pretty.render_program r.Pass.program in
      match Mil.Parse.program src with
      | Error e -> Alcotest.failf "%s: optimized render unparseable: %s" w.name e
      | Ok p2 ->
          Alcotest.(check string)
            (w.name ^ ": parse . render idempotent")
            src
            (Pretty.render_program p2))
    (Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
   @ Workloads.Bots.all @ Workloads.Apps.all @ Workloads.Splash2x.all
   @ Workloads.Numerics.all @ Workloads.Parsec.all)

(* Observation preservation with the interpreter is the expensive check;
   the full registry runs nightly in bench/exp_passes (CI-gated to 0
   diffs) — here the textbook suite keeps runtest fast. *)
let test_textbook_observations () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let seed = Workloads.Registry.program w in
      let r = run_exn seed in
      match V.diff_observations (V.observe seed) (V.observe r.Pass.program) with
      | [] -> ()
      | ds -> Alcotest.failf "%s: %s" w.name (String.concat "; " ds))
    Workloads.Textbook.all

(* ---- chunk clamp regression (satellite of the same PR) ----

   A 2-iteration DOALL loop asked to split into 8 chunks must clamp to 2
   arms; before the clamp, 6 of the 8 arms got empty ranges [__c0 == __c1]
   that each still cost a thread spawn. Validation and measurement must
   both pass on the clamped transform. *)

let clamp_prog =
  let open Builder in
  number
    (program ~globals:[ garray "a" 16 ] ~entry:"main" "clamp2"
       [ func "main"
           [ for_ "i" (i 0) (i 2)
               [ seti "a" (i 8 * v "i") (v "i" + i 1);
                 seti "a" ((i 8 * v "i") + i 1) (v "i" + i 2);
                 seti "a" ((i 8 * v "i") + i 2) (v "i" + i 3);
                 seti "a" ((i 8 * v "i") + i 3) (v "i" + i 4) ];
             return ("a".%[i 0] + "a".%[i 9]) ] ])

let count_par_arms (p : Ast.program) =
  let arms = ref (-1) in
  let rec block b = List.iter stmt b
  and stmt (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Par bs ->
        arms := List.length bs;
        List.iter block bs
    | Ast.If (_, t, e) ->
        block t;
        block e
    | Ast.While (_, b) | Ast.For { body = b; _ } -> block b
    | _ -> ()
  in
  List.iter (fun (f : Ast.func) -> block f.body) p.funcs;
  !arms

let test_chunk_clamp () =
  let report = Discovery.Suggestion.analyze ~threads:4 clamp_prog in
  let t =
    match Transform.Parallelize.apply_first ~chunks:8 report with
    | Ok (t, _) -> t
    | Error skipped ->
        Alcotest.failf "nothing transformable: %s"
          (String.concat "; " (List.map snd skipped))
  in
  Alcotest.(check int) "8 requested chunks clamped to the 2-iteration trip" 2
    (count_par_arms t.Transform.Parallelize.transformed);
  let verdict =
    V.differential ~seeds:[ 42; 1009 ] ~original:t.original
      ~transformed:t.transformed ()
  in
  if not verdict.V.v_ok then
    Alcotest.failf "validation failed:\n%s" (V.verdict_to_string verdict);
  let m =
    Transform.Measure.measure ~domains:2 ~warmup:0 ~reps:1 ~name:"clamp2"
      ~original:t.original t.transformed
  in
  Alcotest.(check bool) "measured runs observably equal" true
    m.Transform.Measure.m_equal

let tests =
  [ Alcotest.test_case "fixpoint: fold->simplify->dce cascade" `Quick
      test_fixpoint_cascade;
    Alcotest.test_case "per-pass counters account for every rewrite" `Quick
      test_counter_conservation;
    Alcotest.test_case "--passes selection and ordering" `Quick
      test_pass_selection;
    Alcotest.test_case "depfile lines of optimized subset of seed" `Quick
      test_depfile_line_subset;
    Alcotest.test_case "Par program: restructuring refused, behavior kept"
      `Quick test_par_refusal;
    Alcotest.test_case "registry: optimized render parse-stable" `Quick
      test_registry_render_roundtrip;
    Alcotest.test_case "textbook: optimized observations unchanged" `Quick
      test_textbook_observations;
    Alcotest.test_case "DOALL chunks clamp to trip count" `Quick
      test_chunk_clamp ]
