(* Tests for the MIL substrate: interpreter semantics, line numbering, static
   analysis (regions, scoping, summaries, reductions), threads and locks. *)

open Mil
module B = Builder

let run ?seed p = (Interp.run ?seed ~instrument:false p).Interp.result

let run_main ?globals ?seed body = run ?seed (Helpers.prog_of_main ?globals body)

let check_int msg expected got = Alcotest.(check int) msg expected got

(* ---- interpreter semantics ---- *)

let test_arith () =
  let open B in
  check_int "sum" 90 (run_main [ decl "s" (i 0);
    for_ "k" (i 0) (i 10) [ set "s" (v "s" + v "k" * i 2) ]; return (v "s") ]);
  (* (100 - 7) / 3 mod 11 = 9 *)
  check_int "sub/div/mod" 9
    (run_main [ return ((i 100 - i 7) / i 3 % i 11) ]);
  check_int "div by zero is 0" 0 (run_main [ return (i 5 / i 0) ]);
  check_int "min" 3 (run_main [ return (B.min_ (i 3) (i 9)) ]);
  check_int "max" 9 (run_main [ return (B.max_ (i 3) (i 9)) ]);
  check_int "neg" (-4) (run_main [ return (B.neg (i 4)) ]);
  check_int "not" 0 (run_main [ return (B.not_ (i 7)) ]);
  check_int "shift" 40 (run_main [ return (i 5 lsl i 3) ]);
  check_int "bitops" 1 (run_main [ return (i 5 land i 3) ])

let test_comparisons () =
  let open B in
  check_int "lt" 1 (run_main [ return (i 2 < i 3) ]);
  check_int "ge" 0 (run_main [ return (i 2 >= i 3) ]);
  check_int "eq" 1 (run_main [ return (i 2 == i 2) ]);
  check_int "ne" 0 (run_main [ return (i 2 != i 2) ]);
  check_int "and" 0 (run_main [ return (i 1 && i 0) ]);
  check_int "or" 1 (run_main [ return (i 1 || i 0) ])

let test_arrays () =
  let open B in
  check_int "array write/read" 42
    (run_main [ decl_arr "a" (i 10); seti "a" (i 3) (i 42); return ("a".%[i 3]) ]);
  check_int "global array" 7
    (run_main ~globals:[ B.garray "g" 4 ]
       [ seti "g" (i 2) (i 7); return ("g".%[i 2]) ]);
  check_int "len" 10 (run_main [ decl_arr "a" (i 10); return (len "a") ]);
  Alcotest.check_raises "oob read" (Interp.Runtime_error "index 10 out of bounds for a (len 10) at line 3")
    (fun () -> ignore (run_main [ decl_arr "a" (i 10); return ("a".%[i 10]) ]))

let test_control () =
  let open B in
  check_int "if true" 1
    (run_main [ if_ (i 1) [ return (i 1) ] [ return (i 2) ] ]);
  check_int "if false" 2
    (run_main [ if_ (i 0) [ return (i 1) ] [ return (i 2) ] ]);
  check_int "while countdown" 0
    (run_main [ decl "k" (i 5); while_ (v "k" > i 0) [ set "k" (v "k" - i 1) ];
                return (v "k") ]);
  check_int "break" 5
    (run_main
       [ decl "k" (i 0);
         while_ (i 1) [ set "k" (v "k" + i 1); when_ (v "k" == i 5) [ break_ ] ];
         return (v "k") ]);
  check_int "nested for" 100
    (run_main
       [ decl "c" (i 0);
         for_ "a" (i 0) (i 10) [ for_ "b" (i 0) (i 10) [ incr "c" ] ];
         return (v "c") ]);
  check_int "for with step" 5
    (run_main
       [ decl "c" (i 0);
         for_step "a" (i 0) (i 10) (i 2) [ incr "c" ];
         return (v "c") ])

let test_functions () =
  let open B in
  let p =
    B.number
      (B.program ~entry:"main" "t"
         [ func "add" ~params:[ "a"; "b" ] [ return (v "a" + v "b") ];
           func "twice" ~params:[ "x" ] [ return (call "add" [ v "x"; v "x" ]) ];
           func "main" [ return (call "twice" [ i 21 ]) ] ])
  in
  check_int "calls" 42 (run p);
  (* recursion *)
  let fib =
    B.number
      (B.program ~entry:"main" "t"
         [ func "fib" ~params:[ "n" ]
             [ when_ (v "n" < i 2) [ return (v "n") ];
               return (call "fib" [ v "n" - i 1 ] + call "fib" [ v "n" - i 2 ]) ];
           func "main" [ return (call "fib" [ i 10 ]) ] ])
  in
  check_int "recursion" 55 (run fib);
  (* array params are by reference *)
  let byref =
    B.number
      (B.program ~entry:"main" "t" ~globals:[ B.garray "g" 4 ]
         [ func "fill" ~arrays:[ "dst" ] [ seti "dst" (i 1) (i 9); return_unit ];
           func "main" [ call_ "fill" [ v "g" ]; return ("g".%[i 1]) ] ])
  in
  check_int "array by reference" 9 (run byref);
  (* scalar params are by value *)
  let byval =
    B.number
      (B.program ~entry:"main" "t"
         [ func "mut" ~params:[ "x" ] [ set "x" (i 0); return_unit ];
           func "main"
             [ decl "y" (i 5); call_ "mut" [ v "y" ]; return (v "y") ] ])
  in
  check_int "scalar by value" 5 (run byval)

let test_rand_determinism () =
  let p =
    let open B in
    Helpers.prog_of_main [ return (call "rand" [ i 1000 ]) ]
  in
  check_int "same seed, same value" (run ~seed:7 p) (run ~seed:7 p);
  let differs = run ~seed:1 p <> run ~seed:2 p || run ~seed:1 p <> run ~seed:3 p in
  Alcotest.(check bool) "different seeds usually differ" true differs

let test_par_threads () =
  let open B in
  (* Locked updates from 4 threads must all be observed. *)
  let p =
    Helpers.prog_of_main ~globals:[ B.gscalar "acc" 0 ]
      [ par
          (List.init 4 (fun _ ->
               [ lock "m"; set "acc" (v "acc" + i 1); unlock "m" ]));
        return (v "acc") ]
  in
  check_int "locked counter" 4 (run p);
  (* Par threads see a copy of the parent's local environment. *)
  let p2 =
    Helpers.prog_of_main ~globals:[ B.garray "out" 4 ]
      [ par (List.init 4 (fun t -> [ seti "out" (i t) (i (t *$ 10)) ]));
        return ("out".%[i 3]) ]
  in
  check_int "disjoint writes" 30 (run p2);
  (* Nested par joins correctly. *)
  let p3 =
    Helpers.prog_of_main ~globals:[ B.gscalar "n" 0 ]
      [ par
          [ [ par [ [ atomic_set "n" (v "n" + i 1) ];
                    [ atomic_set "n" (v "n" + i 1) ] ] ];
            [ atomic_set "n" (v "n" + i 1) ] ];
        return (v "n") ]
  in
  check_int "nested par" 3 (run p3)

let test_par_schedules_vary () =
  let open B in
  (* Without locks, final value of a racy counter depends on the schedule;
     with our statement-granularity fibers it still must count each locked
     region exactly once.  Run several seeds to exercise the scheduler. *)
  let p seed =
    run ~seed
      (Helpers.prog_of_main ~globals:[ B.gscalar "acc" 0 ]
         [ par
             (List.init 3 (fun _ ->
                  [ lock "m";
                    decl "t" (v "acc");
                    set "acc" (v "t" + i 1);
                    unlock "m" ]));
           return (v "acc") ])
  in
  List.iter (fun s -> check_int "locked increments" 3 (p s)) [ 1; 2; 3; 4; 5 ]

let test_barriers () =
  (* Each thread writes its slot, all wait, then each reads its neighbour's
     slot — correct under every schedule only because of the barrier. *)
  let p =
    let open B in
    Helpers.prog_of_main ~globals:[ B.garray "buf" 4; B.garray "out" 4 ]
      [ par
          (List.init 4 (fun t ->
               [ seti "buf" (i t) (i ((t *$ 10) +$ 10));
                 barrier "phase";
                 seti "out" (i t) ("buf".%[i ((t +$ 1) mod 4)]) ]));
        return
          ("out".%[i 0] + "out".%[i 1] + "out".%[i 2] + "out".%[i 3]) ]
  in
  List.iter
    (fun seed -> check_int "barrier handoff" 100 (run ~seed p))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  (* barriers are reusable across loop iterations *)
  let p2 =
    let open B in
    Helpers.prog_of_main ~globals:[ B.gscalar "acc" 0 ]
      [ par
          (List.init 3 (fun _ ->
               [ for_ "s" (i 0) (i 4)
                   [ atomic_set "acc" (v "acc" + i 1); barrier "tick" ] ]));
        return (v "acc") ]
  in
  List.iter (fun seed -> check_int "reused barrier" 12 (run ~seed p2)) [ 1; 2; 3 ]

let test_scope_reuse () =
  (* Addresses of block locals are recycled across iterations. *)
  let events = ref 0 in
  let deallocs = ref 0 in
  let p =
    let open B in
    Helpers.prog_of_main
      [ for_ "k" (i 0) (i 5) [ decl "tmp" (v "k"); set "tmp" (v "tmp" + i 1) ] ]
  in
  let _ =
    Interp.run
      ~emit:(fun ev ->
        events := Stdlib.( + ) !events 1;
        match ev with
        | Trace.Event.Region (Trace.Event.Dealloc _) ->
            deallocs := Stdlib.( + ) !deallocs 1
        | _ -> ())
      p
  in
  ignore !events;
  Alcotest.(check bool) "dealloc events fired" true (!deallocs >= 5)

(* ---- line numbering ---- *)

let test_numbering () =
  let p = Helpers.fig27 in
  let lines = ref [] in
  let rec collect (s : Ast.stmt) =
    lines := s.Ast.line :: !lines;
    match s.Ast.node with
    | Ast.If (_, t, e) -> List.iter collect (t @ e)
    | Ast.While (_, b) -> List.iter collect b
    | Ast.For { body; _ } -> List.iter collect body
    | Ast.Par bs -> List.iter collect (List.concat bs)
    | _ -> ()
  in
  List.iter (fun f -> List.iter collect f.Ast.body) p.Ast.funcs;
  let sorted = List.sort_uniq compare !lines in
  Alcotest.(check int) "unique lines" (List.length !lines) (List.length sorted);
  Alcotest.(check bool) "lines positive" true (List.for_all (fun l -> l > 0) sorted)

(* ---- static analysis ---- *)

let test_regions () =
  let st = Static.analyze Helpers.fig27 in
  let loops = Static.loop_regions st in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check bool) "loop spans its body" true
    (l.Static.last_line > l.Static.first_line)

let test_global_local () =
  let open B in
  let p =
    Helpers.prog_of_main ~globals:[ B.gscalar "g" 0 ]
      [ decl "outer" (i 1);
        for_ "k" (i 0) (i 3)
          [ decl "inner" (v "outer");
            set "g" (v "g" + v "inner" + v "k") ] ]
  in
  let st = Static.analyze p in
  let l = List.hd (Static.loop_regions st) in
  let gv = Static.global_vars st l.Static.id in
  Alcotest.(check bool) "outer is global to loop" true (Static.SS.mem "outer" gv);
  Alcotest.(check bool) "g is global to loop" true (Static.SS.mem "g" gv);
  Alcotest.(check bool) "inner is local to loop" false (Static.SS.mem "inner" gv);
  Alcotest.(check bool) "index not global (not written in body)" false
    (Static.SS.mem "k" gv)

let test_index_written () =
  let open B in
  let p =
    Helpers.prog_of_main
      [ for_ "k" (i 0) (i 10) [ set "k" (v "k" + i 1) ] ]
  in
  let st = Static.analyze p in
  let l = List.hd (Static.loop_regions st) in
  Alcotest.(check bool) "index written in body" true l.Static.index_written_in_body

let test_reductions () =
  let open B in
  let red s = Static.reduction_of_stmt s <> None in
  Alcotest.(check bool) "x = x + e" true (red (set "x" (v "x" + i 1)));
  Alcotest.(check bool) "x = e + x" true (red (set "x" (i 1 + v "x")));
  Alcotest.(check bool) "x = min(x,e)" true (red (set "x" (B.min_ (v "x") (i 3))));
  Alcotest.(check bool) "a[i] += e" true
    (red (seti "a" (v "i") ("a".%[v "i"] + i 1)));
  Alcotest.(check bool) "x = x - e is NOT a reduction" false
    (red (set "x" (v "x" - i 1)));
  Alcotest.(check bool) "recurrence a[i] = a[i] + a[i-1] is NOT" false
    (red (seti "a" (v "i") ("a".%[v "i"] + "a".%[v "i" - i 1])));
  Alcotest.(check bool) "x = y + 1 is NOT" false (red (set "x" (v "y" + i 1)))

let test_summaries () =
  let open B in
  let p =
    B.number
      (B.program ~entry:"main" "t" ~globals:[ B.gscalar "g" 0; B.garray "arr" 4 ]
         [ func "writer" ~arrays:[ "dst" ]
             [ seti "dst" (i 0) (i 1); set "g" (v "g" + i 1); return_unit ];
           func "caller" [ call_ "writer" [ v "arr" ]; return_unit ];
           func "main" [ call_ "caller" []; return_unit ] ])
  in
  let st = Static.analyze p in
  let sum f = Option.get (Static.summary st f) in
  Alcotest.(check bool) "writer writes g" true
    (Static.SS.mem "g" (sum "writer").Static.sum_gwritten);
  Alcotest.(check bool) "writer writes its array param" true
    (Static.SS.mem "dst" (sum "writer").Static.sum_pwritten);
  Alcotest.(check bool) "caller transitively writes arr" true
    (Static.SS.mem "arr" (sum "caller").Static.sum_gwritten);
  Alcotest.(check bool) "caller transitively reads g" true
    (Static.SS.mem "g" (sum "caller").Static.sum_gread)

let test_reduction_only_vars () =
  let open B in
  let p =
    B.number
      (B.program ~entry:"main" "t" ~globals:[ B.gscalar "cnt" 0; B.gscalar "z" 0 ]
         [ func "bump" [ set "cnt" (v "cnt" + i 1); return_unit ];
           func "main"
             [ for_ "k" (i 0) (i 3) [ call_ "bump" []; set "z" (v "k") ] ] ])
  in
  let g = Static.reduction_only_vars p in
  Alcotest.(check bool) "cnt is reduction-only" true (Hashtbl.mem g "cnt");
  Alcotest.(check bool) "z (plain writes in loop) is not" false (Hashtbl.mem g "z")

let test_cond_vars () =
  let open B in
  let p =
    Helpers.prog_of_main
      [ decl "x" (i 0); while_ (v "x" < i 5) [ set "x" (v "x" + i 1) ] ]
  in
  let st = Static.analyze p in
  let l = List.hd (Static.loop_regions st) in
  match l.Static.kind with
  | Static.Rloop { cond_vars; index } ->
      Alcotest.(check bool) "while has no index" true (index = None);
      Alcotest.(check bool) "x in cond vars" true (Static.SS.mem "x" cond_vars)
  | _ -> Alcotest.fail "expected loop region"

let test_pretty_roundtrip_lines () =
  let s = Pretty.render_program Helpers.fig27 in
  Alcotest.(check bool) "mentions while" true
    (Astring_contains.contains s "while");
  Alcotest.(check bool) "numbered lines" true (Astring_contains.contains s "   1  ")

(* QCheck: evaluation matches a reference big-step evaluator for pure
   expressions over known variable values. *)
let qcheck_expr_eval =
  let open QCheck in
  Test.make ~name:"interp evaluates random straight-line programs safely"
    ~count:150 Helpers.Gen.arbitrary_program (fun p ->
      (* memory-safety by construction: just require no exception and
         determinism *)
      let r1 = Interp.run ~seed:11 ~instrument:false p in
      let r2 = Interp.run ~seed:11 ~instrument:false p in
      r1.Interp.result = r2.Interp.result
      && r1.Interp.r_stats.Interp.reads = r2.Interp.r_stats.Interp.reads)

let qcheck_numbering =
  let open QCheck in
  Test.make ~name:"line numbering is dense pre-order" ~count:100
    Helpers.Gen.arbitrary_program (fun p ->
      let max_line = ref 0 and count = ref 0 in
      let rec collect (s : Ast.stmt) =
        incr count;
        if s.Ast.line > !max_line then max_line := s.Ast.line;
        match s.Ast.node with
        | Ast.If (_, t, e) -> List.iter collect (t @ e)
        | Ast.While (_, b) -> List.iter collect b
        | Ast.For { body; _ } -> List.iter collect body
        | Ast.Par bs -> List.iter collect (List.concat bs)
        | _ -> ()
      in
      List.iter (fun f -> List.iter collect f.Ast.body) p.Ast.funcs;
      (* lines = statements + one header per function *)
      !max_line = !count + List.length p.Ast.funcs)

let tests =
  [ Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "control flow" `Quick test_control;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "rand determinism" `Quick test_rand_determinism;
    Alcotest.test_case "par + locks" `Quick test_par_threads;
    Alcotest.test_case "barriers" `Quick test_barriers;
    Alcotest.test_case "scheduler seeds" `Quick test_par_schedules_vary;
    Alcotest.test_case "scope reuse + dealloc" `Quick test_scope_reuse;
    Alcotest.test_case "line numbering" `Quick test_numbering;
    Alcotest.test_case "regions" `Quick test_regions;
    Alcotest.test_case "global vs local vars" `Quick test_global_local;
    Alcotest.test_case "index written in body" `Quick test_index_written;
    Alcotest.test_case "reduction recognition" `Quick test_reductions;
    Alcotest.test_case "interprocedural summaries" `Quick test_summaries;
    Alcotest.test_case "reduction-only vars" `Quick test_reduction_only_vars;
    Alcotest.test_case "loop condition vars" `Quick test_cond_vars;
    Alcotest.test_case "pretty printer" `Quick test_pretty_roundtrip_lines;
    QCheck_alcotest.to_alcotest qcheck_expr_eval;
    QCheck_alcotest.to_alcotest qcheck_numbering ]

(* ---- additional edge cases ---- *)

let test_runtime_errors () =
  let open B in
  Alcotest.check_raises "unbound variable"
    (Interp.Runtime_error "unbound variable nope") (fun () ->
      ignore (run (Helpers.prog_of_main [ set "nope" (i 1) ])));
  Alcotest.check_raises "unknown function"
    (Interp.Runtime_error "unknown function nope (line 2)") (fun () ->
      ignore (run (Helpers.prog_of_main [ call_ "nope" [] ])));
  Alcotest.check_raises "scalar used as array"
    (Interp.Runtime_error "x is not an array (line 3)") (fun () ->
      ignore (run (Helpers.prog_of_main [ decl "x" (i 1); seti "x" (i 0) (i 1) ])))

let test_recursive_summary () =
  (* a self-recursive function's summary must reach its fixpoint *)
  let p =
    let open B in
    B.number
      (B.program ~entry:"main" "t" ~globals:[ B.gscalar "g" 0 ]
         [ B.func "walk" ~params:[ "n" ]
             [ when_ (v "n" <= i 0) [ return_unit ];
               set "g" (v "g" + i 1);
               call_ "walk" [ v "n" - i 1 ];
               return_unit ];
           B.func "main" [ call_ "walk" [ i 5 ] ] ])
  in
  let st = Static.analyze p in
  let s = Option.get (Static.summary st "walk") in
  Alcotest.(check bool) "recursive function writes g" true
    (Static.SS.mem "g" s.Static.sum_gwritten);
  Alcotest.(check bool) "and reads it" true (Static.SS.mem "g" s.Static.sum_gread)

let test_free_statement () =
  let p =
    let open B in
    Helpers.prog_of_main
      [ decl_arr "a" (i 8); seti "a" (i 0) (i 7); free "a"; return (i 1) ]
  in
  check_int "free is legal" 1 (run p);
  (* lifetime event fires for the freed range *)
  let freed = ref 0 in
  let _ =
    Interp.run
      ~emit:(fun ev ->
        match ev with
        | Trace.Event.Region (Trace.Event.Dealloc { addrs }) ->
            List.iter (fun (_, len, _) -> freed := !freed + len) addrs
        | _ -> ())
      p
  in
  Alcotest.(check bool) "range deallocated" true (!freed >= 8)

let test_pretty_exprs () =
  let open B in
  Alcotest.(check string) "binop" "(1 + 2)" (Pretty.expr_to_string (i 1 + i 2));
  Alcotest.(check string) "min" "min(1, 2)"
    (Pretty.expr_to_string (B.min_ (i 1) (i 2)));
  Alcotest.(check string) "index" "a[3]" (Pretty.expr_to_string ("a".%[i 3]));
  Alcotest.(check string) "call" "f(1)" (Pretty.expr_to_string (call "f" [ i 1 ]))

(* Golden print of the parallel constructs the transformer emits: par
   blocks, lock/unlock, barrier and atomic assignment. The exact rendering
   is load-bearing for `discopop parallelize --emit`. *)
let test_pretty_parallel () =
  let open B in
  let p =
    B.number
      (B.program ~globals:[ B.gscalar "s" 0 ] ~entry:"main" "pp"
         [ func "main"
             [ par
                 [ [ lock "m"; set "s" (v "s" + i 1); unlock "m" ];
                   [ atomic_set "s" (v "s" + i 2) ] ];
               barrier "b";
               return (v "s") ] ])
  in
  let expected =
    "      global s = 0\n"
    ^ "   1  func main() {\n"
    ^ "   2    par {\n"
    ^ "          thread 0:\n"
    ^ "   3        lock(m)\n"
    ^ "   4        s = (s + 1)\n"
    ^ "   5        unlock(m)\n"
    ^ "          thread 1:\n"
    ^ "   6        atomic s = (s + 2)\n"
    ^ "        }\n"
    ^ "   7    barrier(b)\n"
    ^ "   8    return s\n"
    ^ "      }\n"
  in
  Alcotest.(check string) "parallel constructs render exactly" expected
    (Pretty.render_program p)

(* ---- MIL text parser (lib/mil/parse) ---- *)

let all_registry_workloads =
  Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
  @ Workloads.Bots.all @ Workloads.Apps.all @ Workloads.Splash2x.all
  @ Workloads.Numerics.all @ Workloads.Parsec.all

(* Every bundled workload's rendering must parse, and parse∘render must be
   idempotent: the first parse may renumber programs whose builders share
   statement values, but from then on text -> AST -> text is a fixpoint.
   This is the contract `discopop serve` relies on for cache-key stability
   across client round-trips. *)
let test_parse_registry_roundtrip () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let name = w.Workloads.Registry.name in
      let text =
        Pretty.render_program (Workloads.Registry.program w)
      in
      match Parse.program ~name text with
      | Error msg -> Alcotest.failf "%s: parse failed: %s" name msg
      | Ok p1 -> (
          let r1 = Pretty.render_program p1 in
          match Parse.program ~name r1 with
          | Error msg -> Alcotest.failf "%s: reparse failed: %s" name msg
          | Ok p2 ->
              Alcotest.(check string)
                (name ^ ": parse∘render is idempotent") r1
                (Pretty.render_program p2)))
    all_registry_workloads

(* The parsed program must also behave like the original: same entry result
   on the (small, fast) textbook suite. *)
let test_parse_semantics () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let name = w.Workloads.Registry.name in
      let p = Workloads.Registry.program w in
      match Parse.program ~name (Pretty.render_program p) with
      | Error msg -> Alcotest.failf "%s: parse failed: %s" name msg
      | Ok p1 -> check_int (name ^ ": same result") (run p) (run p1))
    Workloads.Textbook.all

let test_parse_hand_written () =
  let parse_run src =
    match Parse.program src with
    | Error msg -> Alcotest.failf "parse failed: %s" msg
    | Ok p -> run p
  in
  (* precedence: * binds tighter than +, comparisons tighter than && *)
  check_int "precedence" 7 (parse_run "func main() {\n  return 1 + 2 * 3\n}\n");
  check_int "parens" 9 (parse_run "func main() {\n  return (1 + 2) * 3\n}\n");
  check_int "comparison chain" 1
    (parse_run "func main() {\n  return 1 < 2 && 3 > 2\n}\n");
  (* comments, blank lines, for-loop sugar *)
  check_int "comments and sugar" 45
    (parse_run
       ("# leading comment\n"
       ^ "func main() {\n"
       ^ "  var s = 0   // accumulator\n"
       ^ "  for i = 0; i < 10; i++ {\n"
       ^ "    s += i\n"
       ^ "  }\n"
       ^ "  return s\n"
       ^ "}\n"));
  (* len used as an ordinary variable (histo_vis does this) *)
  check_int "len as a variable" 4
    (parse_run "func main() {\n  var len = 4\n  return len\n}\n")

let test_parse_errors () =
  let fails src =
    match Parse.program src with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "garbage" true (fails "this is not MIL");
  Alcotest.(check bool) "unclosed block" true
    (fails "func main() {\n  return 1\n");
  Alcotest.(check bool) "empty input" true (fails "");
  Alcotest.(check bool) "bad expression" true
    (fails "func main() {\n  return 1 +\n}\n")

(* ---- cooperative cancellation ---- *)

let test_interp_cancel () =
  (* >2048 statements so the poll fires: 1000 iterations x 3 stmts each *)
  let p =
    let open B in
    Helpers.prog_of_main
      [ decl "s" (i 0);
        for_ "k" (i 0) (i 5000) [ set "s" (v "s" + v "k") ];
        return (v "s") ]
  in
  Alcotest.check_raises "cancelled run raises" Interp.Cancelled (fun () ->
      ignore (Interp.run ~cancelled:(fun () -> true) p));
  let polls = Atomic.make 0 in
  let r =
    Interp.run
      ~cancelled:(fun () -> Atomic.incr polls; false)
      p
  in
  check_int "uncancelled run completes" 12497500 r.Interp.result;
  Alcotest.(check bool) "poll fired at least once" true (Atomic.get polls >= 1)

let tests =
  tests
  @ [ Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
      Alcotest.test_case "recursive summary fixpoint" `Quick test_recursive_summary;
      Alcotest.test_case "free statement" `Quick test_free_statement;
      Alcotest.test_case "pretty expressions" `Quick test_pretty_exprs;
      Alcotest.test_case "pretty parallel constructs" `Quick test_pretty_parallel;
      Alcotest.test_case "parse: registry round-trip" `Quick
        test_parse_registry_roundtrip;
      Alcotest.test_case "parse: semantics preserved" `Quick test_parse_semantics;
      Alcotest.test_case "parse: hand-written input" `Quick test_parse_hand_written;
      Alcotest.test_case "parse: errors" `Quick test_parse_errors;
      Alcotest.test_case "interp: cooperative cancel" `Quick test_interp_cancel ]
