(* Tests for the batch pipeline driver (lib/pipeline): the content-addressed
   cache round-trip, batch-vs-single-run agreement, per-job fault isolation
   (raise / timeout / retry), and the NaN-safety + total-order properties of
   the ranking layer the batch report depends on. *)

module R = Workloads.Registry
module S = Discovery.Suggestion

let all_workloads =
  Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
  @ Workloads.Bots.all @ Workloads.Apps.all @ Workloads.Splash2x.all
  @ Workloads.Numerics.all @ Workloads.Parsec.all

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "discopop-test-cache.%d.%d" (Unix.getpid ()) !n)
    in
    let rec rm_rf path =
      match Unix.lstat path with
      | { Unix.st_kind = Unix.S_DIR; _ } ->
          Array.iter
            (fun e -> rm_rf (Filename.concat path e))
            (Sys.readdir path);
          Unix.rmdir path
      | _ -> Sys.remove path
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
    in
    rm_rf dir;
    dir

let dep_names (deps : Profiler.Dep.Set_.t) =
  Profiler.Dep.Set_.to_list deps
  |> List.map (fun (d, _) -> Profiler.Dep.to_string d)
  |> List.sort compare

(* Cache: store then load hits with identical content; a different config is
   a different key; a corrupted entry is a miss, never an error. *)
let cache_roundtrip () =
  let w = List.find (fun w -> w.R.name = "histogram") Workloads.Textbook.all in
  let prog = R.program w in
  let config = Pipeline.Cache.default_config in
  let profile = Profiler.Serial.profile prog in
  let report = S.analyze_profiled prog profile in
  let summary = S.summary_to_string ~name:w.R.name (S.summarize report) in
  let dir = fresh_dir () in
  let key = Pipeline.Cache.key config prog in
  Alcotest.(check (option string)) "empty dir misses" None
    (Option.map snd (Pipeline.Cache.load ~dir ~key));
  Pipeline.Cache.store ~dir ~key ~deps:profile.Profiler.Serial.deps ~summary ();
  (match Pipeline.Cache.load ~dir ~key with
  | None -> Alcotest.fail "stored entry must load"
  | Some (deps, loaded) ->
      Alcotest.(check string) "summary round-trips byte-for-byte" summary
        loaded;
      Alcotest.(check (list string))
        "dependences round-trip"
        (dep_names profile.Profiler.Serial.deps)
        (dep_names deps));
  let other = Pipeline.Cache.key { config with skip = not config.skip } prog in
  Alcotest.(check bool) "config change changes the key" false (key = other);
  Alcotest.(check bool) "other config misses"
    true
    (Pipeline.Cache.load ~dir ~key:other = None);
  let other_prog = R.program ~size:(w.R.default_size + 7) w in
  Alcotest.(check bool) "program change changes the key" false
    (key = Pipeline.Cache.key config other_prog);
  (* corrupt the deps file: the entry must degrade to a miss *)
  let oc = open_out (Filename.concat dir (key ^ ".deps")) in
  output_string oc "not a depfile\n";
  close_out oc;
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Pipeline.Cache.load ~dir ~key = None)

(* A cold batch over registry workloads must agree with direct single-run
   analysis, and a warm re-run must be all cache hits with byte-identical
   summaries. *)
let batch_matches_single_runs () =
  let names = [ "histogram"; "dotprod"; "jacobi" ] in
  let ws =
    List.map
      (fun n -> List.find (fun w -> w.R.name = n) Workloads.Textbook.all)
      names
  in
  let dir = fresh_dir () in
  let config = Pipeline.Cache.default_config in
  let jobs () =
    List.map (fun w -> Pipeline.workload_job ~cache_dir:dir ~config w) ws
  in
  let summaries (rep : Pipeline.report) =
    List.map
      (fun (r : Pipeline.job_result) ->
        match r.Pipeline.r_status with
        | Pipeline.Ok_ ok -> (r.Pipeline.r_name, ok.Pipeline.jr_summary)
        | _ -> Alcotest.fail (r.Pipeline.r_name ^ " did not succeed"))
      rep.Pipeline.b_results
  in
  let cold = Pipeline.run_batch ~jobs:2 (jobs ()) in
  Alcotest.(check int) "all ok" (List.length ws) cold.Pipeline.b_ok;
  Alcotest.(check int) "cold run misses" (List.length ws)
    cold.Pipeline.b_cache_misses;
  List.iter
    (fun w ->
      let direct =
        S.analyze (R.program w)
        |> S.summarize
        |> S.summary_to_string ~name:w.R.name
      in
      let batched = List.assoc w.R.name (summaries cold) in
      Alcotest.(check string)
        (w.R.name ^ ": batch = single run")
        direct batched)
    ws;
  let warm = Pipeline.run_batch ~jobs:2 (jobs ()) in
  Alcotest.(check int) "warm run all hits" (List.length ws)
    warm.Pipeline.b_cache_hits;
  Alcotest.(check int) "warm run no misses" 0 warm.Pipeline.b_cache_misses;
  Alcotest.(check bool) "warm summaries byte-identical" true
    (summaries cold = summaries warm)

(* Fault isolation: one healthy job, one that always raises, one that always
   times out. The batch must complete with a full report, the raiser retried
   once, and the others unaffected. *)
let fault_isolation () =
  let ok_result =
    { Pipeline.jr_summary = "ok"; jr_deps = 0; jr_suggestions = 0;
      jr_cache_hit = false; jr_entry = (Profiler.Dep.Set_.create (), "ok") }
  in
  let healthy =
    { Pipeline.j_name = "healthy"; j_run = (fun ~cancelled:_ -> ok_result) }
  in
  let raiser =
    { Pipeline.j_name = "raiser";
      j_run = (fun ~cancelled:_ -> failwith "injected fault") }
  in
  let sleeper =
    { Pipeline.j_name = "sleeper";
      j_run =
        (fun ~cancelled ->
          (* cooperative: poll the flag so the domain can be reaped *)
          while not (cancelled ()) do
            Unix.sleepf 0.002
          done;
          ok_result) }
  in
  let rep =
    Pipeline.run_batch ~jobs:3 ~timeout_s:0.2 ~retries:1
      [ healthy; raiser; sleeper ]
  in
  Alcotest.(check int) "three results" 3 (List.length rep.Pipeline.b_results);
  Alcotest.(check int) "one ok" 1 rep.Pipeline.b_ok;
  Alcotest.(check int) "one failed" 1 rep.Pipeline.b_failed;
  Alcotest.(check int) "one timeout" 1 rep.Pipeline.b_timeout;
  List.iter
    (fun (r : Pipeline.job_result) ->
      match (r.Pipeline.r_name, r.Pipeline.r_status) with
      | "healthy", Pipeline.Ok_ _ ->
          Alcotest.(check int) "healthy: one attempt" 1 r.Pipeline.r_attempts
      | "raiser", Pipeline.Failed msg ->
          Alcotest.(check int) "raiser: retried once" 2 r.Pipeline.r_attempts;
          Alcotest.(check bool) "raiser: message kept" true
            (Astring_contains.contains msg "injected fault")
      | "sleeper", Pipeline.Timed_out ->
          Alcotest.(check int) "sleeper: retried once" 2 r.Pipeline.r_attempts
      | name, _ -> Alcotest.fail (name ^ ": unexpected status"))
    rep.Pipeline.b_results

(* Ranking safety net: every score the full registry produces is finite, and
   the suggestion order is the total order of [compare_rank]. *)
let ranking_is_finite_and_total () =
  let finite x = Float.is_finite x in
  List.iter
    (fun (w : R.t) ->
      let report = S.analyze (R.program w) in
      List.iter
        (fun (s : S.t) ->
          let sc = s.S.score in
          Alcotest.(check bool)
            (Printf.sprintf "%s: finite score" w.R.name)
            true
            (finite sc.Discovery.Ranking.coverage
            && finite sc.Discovery.Ranking.local_speedup
            && finite sc.Discovery.Ranking.imbalance
            && finite sc.Discovery.Ranking.combined))
        report.S.suggestions;
      let sorted = List.sort S.compare_rank report.S.suggestions in
      Alcotest.(check bool)
        (Printf.sprintf "%s: suggestions come out sorted" w.R.name)
        true
        (List.for_all2 (fun a b -> S.compare_rank a b = 0) report.S.suggestions
           sorted);
      (* antisymmetry + totality of the comparator over real suggestions *)
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let ab = S.compare_rank a b and ba = S.compare_rank b a in
              Alcotest.(check bool) "antisymmetric" true
                (compare ab 0 = compare 0 ba))
            report.S.suggestions)
        report.S.suggestions)
    all_workloads

let rank_key_nan () =
  let s =
    { Discovery.Ranking.coverage = 0.5; local_speedup = 2.0; imbalance = 0.0;
      combined = Float.nan }
  in
  Alcotest.(check bool) "NaN ranks last" true
    (Discovery.Ranking.rank_key s = Float.neg_infinity);
  let clamped =
    Discovery.Ranking.combine ~coverage:Float.nan ~local_speedup:Float.nan
      ~imbalance:Float.nan
  in
  Alcotest.(check bool) "combine never yields NaN" true
    (Float.is_finite clamped.Discovery.Ranking.combined)

let summary_roundtrip () =
  let w = List.find (fun w -> w.R.name = "histo_vis") Workloads.Textbook.all in
  let report = S.analyze (R.program w) in
  let entries = S.summarize report in
  Alcotest.(check bool) "non-empty summary" true (entries <> []);
  match S.summary_of_string (S.summary_to_string ~name:w.R.name entries) with
  | Error e -> Alcotest.fail ("summary_of_string: " ^ e)
  | Ok back ->
      Alcotest.(check bool) "summary text round-trips exactly" true
        (entries = back)

(* jr_entry must carry exactly what the cache tiers would serve: a cold run
   returns the freshly computed (deps, summary) pair, and a warm run the
   loaded one — byte- and cardinality-identical. This is what lets the serve
   daemon render a miss without re-reading the entry it just wrote. *)
let job_entry_matches_summary () =
  let w = List.find (fun w -> w.R.name = "histogram") Workloads.Textbook.all in
  let prog = R.program w in
  let mem = Pipeline.Mem_cache.create ~capacity:4 in
  let job =
    Pipeline.program_job ~mem ~name:"entry"
      ~config:Pipeline.Cache.default_config prog
  in
  let run () =
    match Pipeline.run_job ~cancelled:(fun () -> false) job with
    | Pipeline.Ok_ ok -> ok
    | _ -> Alcotest.fail "job failed"
  in
  let cold = run () in
  Alcotest.(check bool) "cold run is a miss" false cold.Pipeline.jr_cache_hit;
  let deps, summary = cold.Pipeline.jr_entry in
  Alcotest.(check string) "entry summary = jr_summary" cold.Pipeline.jr_summary
    summary;
  Alcotest.(check int) "entry deps = jr_deps" cold.Pipeline.jr_deps
    (Profiler.Dep.Set_.cardinal deps);
  let warm = run () in
  Alcotest.(check bool) "warm run hits" true warm.Pipeline.jr_cache_hit;
  let wdeps, wsummary = warm.Pipeline.jr_entry in
  Alcotest.(check string) "hit serves the same summary" summary wsummary;
  Alcotest.(check (list string)) "hit serves the same dependences"
    (dep_names deps) (dep_names wdeps)

(* ---- cache eviction ---- *)

let dummy_deps = Profiler.Dep.Set_.create ()

(* A loadable summary: eviction must be judged on live entries, and load
   validates the summary, so the fixtures have to parse. Analyzed once. *)
let dummy_entries =
  lazy
    (let w =
       List.find (fun w -> w.R.name = "dotprod") Workloads.Textbook.all
     in
     S.analyze (R.program ~size:64 w) |> S.summarize)

let dummy_summary name = S.summary_to_string ~name (Lazy.force dummy_entries)

let entry_exists dir key =
  Sys.file_exists (Filename.concat dir (key ^ ".deps"))
  && Sys.file_exists (Filename.concat dir (key ^ ".sugg"))

let set_age dir key age_s =
  let stamp = Unix.gettimeofday () -. age_s in
  List.iter
    (fun ext ->
      Unix.utimes (Filename.concat dir (key ^ ext)) stamp stamp)
    [ ".deps"; ".sugg" ]

(* TTL sweep: expired entries go (both files of the pair), fresh ones stay;
   no_limits never evicts. *)
let cache_ttl_eviction () =
  let dir = fresh_dir () in
  let store key =
    Pipeline.Cache.store ~dir ~key ~deps:dummy_deps
      ~summary:(dummy_summary key) ()
  in
  store "old1";
  store "old2";
  store "fresh";
  set_age dir "old1" 3600.0;
  set_age dir "old2" 3600.0;
  Alcotest.(check int) "no_limits is a no-op" 0
    (Pipeline.Cache.sweep ~dir Pipeline.Cache.no_limits);
  let n =
    Pipeline.Cache.sweep ~dir (Pipeline.Cache.limits ~ttl_s:60.0 ())
  in
  Alcotest.(check int) "two expired entries evicted" 2 n;
  Alcotest.(check bool) "old1 gone" false (entry_exists dir "old1");
  Alcotest.(check bool) "old2 gone" false (entry_exists dir "old2");
  Alcotest.(check bool) "fresh survives" true (entry_exists dir "fresh")

(* Size sweep: LRU-by-mtime order, oldest evicted first, stops as soon as
   the directory fits the budget. *)
let cache_size_eviction () =
  let dir = fresh_dir () in
  let store key =
    Pipeline.Cache.store ~dir ~key ~deps:dummy_deps
      ~summary:(dummy_summary key) ()
  in
  store "a";
  store "b";
  store "c";
  set_age dir "a" 300.0;
  set_age dir "b" 200.0;
  set_age dir "c" 100.0;
  let entry_bytes =
    let sz f = (Unix.stat (Filename.concat dir f)).Unix.st_size in
    sz "a.deps" + sz "a.sugg"
  in
  (* budget fits two entries (entries are near-identical in size) *)
  let budget = (2 * entry_bytes) + (entry_bytes / 2) in
  let n =
    Pipeline.Cache.sweep ~dir
      { Pipeline.Cache.max_bytes = Some budget; ttl_s = None }
  in
  Alcotest.(check int) "one entry evicted" 1 n;
  Alcotest.(check bool) "oldest (a) evicted" false (entry_exists dir "a");
  Alcotest.(check bool) "b survives" true (entry_exists dir "b");
  Alcotest.(check bool) "c survives" true (entry_exists dir "c")

(* Reading an entry refreshes its recency: after a load, a size sweep must
   pick a different victim than it would have before the load. *)
let cache_load_touches () =
  let dir = fresh_dir () in
  let store key =
    Pipeline.Cache.store ~dir ~key ~deps:dummy_deps
      ~summary:(dummy_summary key) ()
  in
  store "stale";
  store "used";
  set_age dir "stale" 100.0;
  set_age dir "used" 200.0;
  (* "used" is older on disk, but a load promotes it to most recent *)
  Alcotest.(check bool) "load hits" true
    (Pipeline.Cache.load ~dir ~key:"used" <> None);
  let n =
    Pipeline.Cache.sweep ~dir { Pipeline.Cache.max_bytes = Some 1; ttl_s = None }
  in
  Alcotest.(check int) "evicts down to the budget" 2 n;
  (* with a budget fitting one entry, the read one must be the survivor *)
  let dir2 = fresh_dir () in
  let store2 key =
    Pipeline.Cache.store ~dir:dir2 ~key ~deps:dummy_deps
      ~summary:(dummy_summary key) ()
  in
  store2 "stale";
  store2 "used";
  set_age dir2 "stale" 100.0;
  set_age dir2 "used" 200.0;
  Alcotest.(check bool) "load hits" true
    (Pipeline.Cache.load ~dir:dir2 ~key:"used" <> None);
  let entry_bytes =
    let sz f = (Unix.stat (Filename.concat dir2 f)).Unix.st_size in
    sz "used.deps" + sz "used.sugg"
  in
  ignore
    (Pipeline.Cache.sweep ~dir:dir2
       { Pipeline.Cache.max_bytes = Some (entry_bytes + (entry_bytes / 2));
         ttl_s = None });
  Alcotest.(check bool) "recently read entry survives" true
    (entry_exists dir2 "used");
  Alcotest.(check bool) "unread entry evicted" false (entry_exists dir2 "stale")

(* store with limits sweeps at publish but shields the key it just wrote,
   even when the budget is smaller than a single entry. *)
let cache_store_sweeps () =
  let dir = fresh_dir () in
  let limits = Pipeline.Cache.limits ~max_mb:0 () in
  (* max_mb = 0 -> budget 0 bytes: everything but the shielded key goes *)
  Pipeline.Cache.store ~dir ~key:"first" ~deps:dummy_deps
    ~summary:(dummy_summary "first") ();
  Pipeline.Cache.store ~limits ~dir ~key:"second" ~deps:dummy_deps
    ~summary:(dummy_summary "second") ();
  Alcotest.(check bool) "older entry swept at publish" false
    (entry_exists dir "first");
  Alcotest.(check bool) "just-published entry shielded" true
    (entry_exists dir "second");
  Alcotest.(check bool) "shielded entry still loads" true
    (Pipeline.Cache.load ~dir ~key:"second" <> None)

let tests =
  [ Alcotest.test_case "cache round-trip + invalidation" `Quick cache_roundtrip;
    Alcotest.test_case "cache TTL eviction" `Quick cache_ttl_eviction;
    Alcotest.test_case "cache size eviction is LRU-by-mtime" `Quick
      cache_size_eviction;
    Alcotest.test_case "cache load refreshes recency" `Quick cache_load_touches;
    Alcotest.test_case "cache store sweeps, shielding its key" `Quick
      cache_store_sweeps;
    Alcotest.test_case "job entry mirrors the cache tiers" `Quick
      job_entry_matches_summary;
    Alcotest.test_case "batch = single runs; warm = byte-identical hits" `Slow
      batch_matches_single_runs;
    Alcotest.test_case "fault isolation: raise / timeout / retry" `Quick
      fault_isolation;
    Alcotest.test_case "ranking finite + total over full registry" `Slow
      ranking_is_finite_and_total;
    Alcotest.test_case "rank_key treats NaN as -inf" `Quick rank_key_nan;
    Alcotest.test_case "suggestion summary round-trip" `Quick summary_roundtrip
  ]
