(* Tests for the observability layer (lib/obs): the JSON value type
   round-trips through its own parser, the JSONL export is parseable line by
   line, disabled mode is a no-op, and the serial and parallel profilers
   publish identical deterministic counters for the same workload. *)

module J = Obs.Json

(* Every test owns the global registry: start clean, leave clean. *)
let fresh () =
  Obs.disable ();
  Obs.reset ();
  Obs.enable ()

let teardown () =
  Obs.disable ();
  Obs.reset ()

let with_registry f =
  fresh ();
  Fun.protect ~finally:teardown f

(* --- JSON value round-trips --- *)

let roundtrip v =
  match J.of_string (J.to_string v) with
  | Ok v' -> v'
  | Error msg -> Alcotest.failf "parse error: %s" msg

let test_json_roundtrip () =
  let cases =
    [ J.Null;
      J.Bool true;
      J.Int (-42);
      J.Float 3.5;
      J.String "plain";
      J.String "esc \" \\ \n \t quote";
      J.List [ J.Int 1; J.String "two"; J.Null ];
      J.Obj
        [ ("a", J.Int 1);
          ("nested", J.Obj [ ("b", J.List [ J.Float 0.25; J.Bool false ]) ]) ]
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check string) "roundtrip" (J.to_string v)
        (J.to_string (roundtrip v)))
    cases;
  (* pretty output parses back to the same value too *)
  let v = J.Obj [ ("xs", J.List [ J.Int 1; J.Int 2 ]); ("s", J.String "hi") ] in
  match J.of_string (J.pretty v) with
  | Ok v' -> Alcotest.(check string) "pretty" (J.to_string v) (J.to_string v')
  | Error msg -> Alcotest.failf "pretty parse error: %s" msg

let test_json_floats_stay_floats () =
  (* floats must keep a decimal marker so they re-parse as floats *)
  match roundtrip (J.Float 2.0) with
  | J.Float f -> Alcotest.(check (float 0.0)) "2.0" 2.0 f
  | _ -> Alcotest.fail "Float 2.0 did not round-trip as a float"

(* --- registry basics --- *)

let test_disabled_is_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.counter "t.disabled" in
  Obs.Counter.add c 5;
  Obs.Gauge.set (Obs.gauge "t.disabled_g") 1.5;
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0
    (Obs.gauge_value "t.disabled_g");
  with_registry @@ fun () ->
  Obs.Counter.add c 5;
  Alcotest.(check int) "counter counts when enabled" 5 (Obs.Counter.value c)

let test_span_and_meter () =
  with_registry @@ fun () ->
  let m = Obs.meter "t.events" ~per:"t.work" in
  Obs.Span.with_ ~phase:"t.work" (fun () ->
      for _ = 1 to 10 do
        Obs.Meter.mark m 1
      done);
  Alcotest.(check int) "span ran once" 1 (Obs.Span.calls "t.work");
  Alcotest.(check bool) "span took time" true (Obs.Span.ns "t.work" >= 0);
  Alcotest.(check int) "meter counted" 10 (Obs.Meter.count m)

(* --- JSONL exporter --- *)

let test_jsonl_parses () =
  with_registry @@ fun () ->
  Obs.Counter.add (Obs.counter "t.c") 3;
  Obs.Gauge.set (Obs.gauge "t.g") 0.5;
  Obs.Span.with_ ~phase:"t.s" (fun () -> ());
  Obs.Meter.mark (Obs.meter "t.m" ~per:"t.s") 1;
  let lines =
    String.split_on_char '\n' (Obs.to_jsonl ())
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "has lines" true (List.length lines >= 4);
  List.iter
    (fun line ->
      match J.of_string line with
      | Ok (J.Obj fields) ->
          Alcotest.(check bool) "has kind" true (List.mem_assoc "kind" fields);
          Alcotest.(check bool) "has name" true (List.mem_assoc "name" fields)
      | Ok _ -> Alcotest.failf "JSONL line is not an object: %s" line
      | Error msg -> Alcotest.failf "JSONL line unparseable (%s): %s" msg line)
    lines;
  (* the counter's value survives the round trip *)
  let counter_line =
    List.find
      (fun l ->
        match J.of_string l with
        | Ok o ->
            J.member "kind" o = Some (J.String "counter")
            && J.member "name" o = Some (J.String "t.c")
        | Error _ -> false)
      lines
  in
  match J.of_string counter_line with
  | Ok o -> Alcotest.(check (option int)) "value" (Some 3)
              (Option.map J.get_int (J.member "value" o) |> Option.join)
  | Error _ -> assert false

let test_snapshot_shape () =
  with_registry @@ fun () ->
  Obs.Counter.add (Obs.counter "t.c") 1;
  Obs.Span.with_ ~phase:"t.s" (fun () -> ());
  let snap = Obs.snapshot () in
  List.iter
    (fun section ->
      match J.member section snap with
      | Some (J.Obj _) -> ()
      | _ -> Alcotest.failf "snapshot missing %s section" section)
    [ "counters"; "gauges"; "spans"; "meters" ]

(* --- serial vs parallel profiler determinism --- *)

let test_serial_parallel_counters_agree () =
  with_registry @@ fun () ->
  let prog = Helpers.fig27 in
  let _ = Profiler.Serial.profile prog in
  let s_acc = Obs.counter_value "profiler.accesses" in
  let s_deps = Obs.counter_value "profiler.deps" in
  Alcotest.(check bool) "serial counted accesses" true (s_acc > 0);
  Alcotest.(check bool) "serial counted deps" true (s_deps > 0);
  Obs.reset ();
  let workers = 3 in
  let _ = Profiler.Parallel.profile ~workers ~perfect:true prog in
  Alcotest.(check int) "accesses agree" s_acc
    (Obs.counter_value "profiler.accesses");
  Alcotest.(check int) "deps agree" s_deps
    (Obs.counter_value "profiler.deps");
  (* per-worker access counters partition the total *)
  let per_worker =
    List.init workers (fun i ->
        Obs.counter_value (Printf.sprintf "profiler.worker.%d.accesses" i))
  in
  Alcotest.(check int) "worker accesses sum to total" s_acc
    (List.fold_left ( + ) 0 per_worker)

let test_reset_zeroes () =
  with_registry @@ fun () ->
  Obs.Counter.add (Obs.counter "t.r") 7;
  Obs.reset ();
  Alcotest.(check int) "zeroed" 0 (Obs.counter_value "t.r")

(* --- Prometheus text exposition --- *)

let prom_lines () =
  String.split_on_char '\n' (Obs.prometheus ())
  |> List.filter (fun l -> String.trim l <> "")

let is_comment l = String.length l > 0 && l.[0] = '#'

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* "name{labels} value" or "name value"; labels may contain escaped quotes *)
let split_sample l =
  (* the value is everything after the last space outside braces — since
     label values escape newlines and the renderer never emits spaces
     after the closing brace except the single separator, the last space
     of the line delimits the value *)
  match String.rindex_opt l ' ' with
  | None -> Alcotest.failf "unsplittable sample line: %s" l
  | Some i ->
      ( String.sub l 0 i,
        String.sub l (i + 1) (String.length l - i - 1) )

let metric_name key =
  match String.index_opt key '{' with
  | None -> key
  | Some i -> String.sub key 0 i

let valid_name n =
  n <> ""
  && (match n.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       n

let prom_value v =
  if v = "+Inf" then infinity
  else if v = "-Inf" then neg_infinity
  else if v = "NaN" then nan
  else float_of_string v

let test_prometheus_validity () =
  with_registry @@ fun () ->
  Obs.Counter.add (Obs.counter "serve.requests.ok") 2;
  Obs.Gauge.set (Obs.gauge "9weird name-with*junk") 1.5;
  Obs.Span.with_ ~phase:"t.phase" (fun () -> ());
  let h = Obs.histogram "t.lat" in
  List.iter
    (fun ns -> Obs.Histogram.observe h ns)
    [ 1_000; 1_000; 950_000; 40_000_000; 40_000_000; 40_000_000;
      2_000_000_000 ];
  let lines = prom_lines () in
  (* every sample line is "name[{labels}] value" with a legal metric name
     and a parseable value *)
  List.iter
    (fun l ->
      if not (is_comment l) then begin
        let key, v = split_sample l in
        let n = metric_name key in
        Alcotest.(check bool) ("legal name: " ^ n) true (valid_name n);
        match prom_value v with
        | (_ : float) -> ()
        | exception _ -> Alcotest.failf "unparseable value %S in %S" v l
      end)
    lines;
  (* dotted counter sanitizes and takes the _total suffix *)
  Alcotest.(check bool) "counter rendered" true
    (List.mem "serve_requests_ok_total 2" lines);
  (* a leading digit is prefixed, junk chars become underscores *)
  Alcotest.(check bool) "digit-first gauge sanitized" true
    (List.exists (starts_with "_9weird_name_with_junk ") lines);
  (* spans render as a labelled counter family *)
  Alcotest.(check bool) "span family" true
    (List.exists
       (starts_with "discopop_span_calls_total{phase=\"t.phase\"}")
       lines);
  (* each TYPE comment precedes its family exactly once *)
  let type_lines = List.filter (starts_with "# TYPE ") lines in
  let type_names =
    List.map
      (fun l ->
        match String.split_on_char ' ' l with
        | _ :: _ :: n :: _ -> n
        | _ -> Alcotest.failf "bad TYPE line: %s" l)
      type_lines
  in
  Alcotest.(check int) "TYPE lines unique"
    (List.length type_names)
    (List.length (List.sort_uniq compare type_names))

let test_prometheus_histogram_contract () =
  with_registry @@ fun () ->
  let h = Obs.histogram "t.contract" in
  List.iter
    (fun ns -> Obs.Histogram.observe h ns)
    [ 500; 500; 123_456; 123_456; 123_456; 77_000_000; 900_000_000;
      900_000_000 ];
  let lines = prom_lines () in
  let bucket_lines =
    List.filter (starts_with "t_contract_seconds_bucket{le=\"") lines
  in
  Alcotest.(check bool) "has buckets" true (List.length bucket_lines >= 2);
  (* cumulativity: le boundaries strictly increase, counts never decrease *)
  let parse_bucket l =
    let key, v = split_sample l in
    let le_start = String.index key '"' + 1 in
    let le_end = String.rindex key '"' in
    ( prom_value (String.sub key le_start (le_end - le_start)),
      int_of_float (prom_value v) )
  in
  let buckets = List.map parse_bucket bucket_lines in
  let rec monotone = function
    | (le1, c1) :: ((le2, c2) :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "le increases (%g < %g)" le1 le2)
          true (le1 < le2);
        Alcotest.(check bool)
          (Printf.sprintf "count cumulative (%d <= %d)" c1 c2)
          true (c1 <= c2);
        monotone rest
    | _ -> ()
  in
  monotone buckets;
  (* the series closes at +Inf with the full count *)
  let last_le, last_count = List.nth buckets (List.length buckets - 1) in
  Alcotest.(check bool) "+Inf closes the series" true (last_le = infinity);
  Alcotest.(check int) "+Inf holds every observation"
    (Obs.Histogram.count h) last_count;
  (* _count and _sum agree with the registry's own numbers (the JSON dump
     exports the same count; sum = mean * count by definition) *)
  let sample name =
    match List.find_opt (starts_with (name ^ " ")) lines with
    | Some l -> prom_value (snd (split_sample l))
    | None -> Alcotest.failf "missing %s" name
  in
  Alcotest.(check int) "_count = histogram count"
    (Obs.Histogram.count h)
    (int_of_float (sample "t_contract_seconds_count"));
  let snap_count =
    let open J in
    Obs.snapshot () |> member "histograms"
    |> Fun.flip Option.bind (member "t.contract")
    |> Fun.flip Option.bind (member "count")
    |> Fun.flip Option.bind get_int
  in
  Alcotest.(check (option int)) "_count = JSON dump count"
    (Some (Obs.Histogram.count h)) snap_count;
  let expected_sum =
    Obs.Histogram.mean_ns h
    *. float_of_int (Obs.Histogram.count h) /. 1e9
  in
  let got_sum = sample "t_contract_seconds_sum" in
  Alcotest.(check bool)
    (Printf.sprintf "_sum ~ mean*count (%g vs %g)" got_sum expected_sum)
    true
    (Float.abs (got_sum -. expected_sum) <= 1e-9 +. (0.01 *. expected_sum))

let test_prometheus_label_escaping () =
  with_registry @@ fun () ->
  Obs.Span.with_ ~phase:"we\"ird\\phase\nnewline" (fun () -> ());
  let lines = prom_lines () in
  Alcotest.(check bool) "label escaped" true
    (List.exists
       (starts_with
          "discopop_span_calls_total{phase=\"we\\\"ird\\\\phase\\nnewline\"}")
       lines);
  (* no raw newline survived into any label: every line splits cleanly *)
  List.iter
    (fun l -> if not (is_comment l) then ignore (split_sample l))
    lines

(* --- flight recorder --- *)

let mk_record ?(service_ns = 1_000_000) ?(spans = []) id =
  { Obs.Flight.fr_id = id;
    fr_route = "POST /profile";
    fr_status = 200;
    fr_tier = "mem";
    fr_queue_ns = 10_000;
    fr_service_ns = service_ns;
    fr_done_at = 0.0;
    fr_spans = spans }

let test_flight_wraparound () =
  let fl =
    Obs.Flight.create ~capacity:4 ~slow_capacity:2 ~slow_threshold_s:0.5
  in
  (* one slow record early, then enough fast traffic to evict it from the
     main ring *)
  Obs.Flight.record fl (mk_record ~service_ns:1_000_000_000 "slow0");
  for i = 0 to 9 do
    Obs.Flight.record fl (mk_record (Printf.sprintf "r%d" i))
  done;
  Alcotest.(check int) "total counts every write" 11 (Obs.Flight.total fl);
  Alcotest.(check int) "one slow record" 1 (Obs.Flight.slow_total fl);
  let ids r = List.map (fun x -> x.Obs.Flight.fr_id) r in
  Alcotest.(check (list string)) "main ring keeps last 4, newest first"
    [ "r9"; "r8"; "r7"; "r6" ]
    (ids (Obs.Flight.recent fl));
  Alcotest.(check (list string)) "slow ring retains the slow request"
    [ "slow0" ]
    (ids (Obs.Flight.slow fl));
  (* find consults both rings: evicted fast records are gone, the slow one
     outlives the main window *)
  Alcotest.(check bool) "recent id found" true
    (Obs.Flight.find fl "r9" <> None);
  Alcotest.(check bool) "evicted id gone" true
    (Obs.Flight.find fl "r0" = None);
  Alcotest.(check bool) "slow id survives fast traffic" true
    (Obs.Flight.find fl "slow0" <> None)

let test_flight_concurrent_writers () =
  let fl =
    Obs.Flight.create ~capacity:128 ~slow_capacity:4 ~slow_threshold_s:1e9
  in
  let writers = 4 and per_writer = 500 in
  let doms =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per_writer - 1 do
              Obs.Flight.record fl (mk_record (Printf.sprintf "w%d-%d" w i))
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "every write counted" (writers * per_writer)
    (Obs.Flight.total fl);
  Alcotest.(check int) "ring holds exactly capacity" 128
    (List.length (Obs.Flight.recent fl));
  Alcotest.(check int) "nothing crossed the slow threshold" 0
    (Obs.Flight.slow_total fl);
  (* each writer's last record is among the newest 128 only if its final
     writes landed late — but every retained record must be well-formed *)
  List.iter
    (fun r ->
      match Obs.Flight.record_json r with
      | Obs.Json.Obj fields ->
          Alcotest.(check bool) "record has id" true
            (List.mem_assoc "id" fields)
      | _ -> Alcotest.fail "record_json not an object")
    (Obs.Flight.recent fl)

let test_flight_chrome_trace () =
  let spans =
    [ { Obs.Req.sp_name = "queue_wait"; sp_start_ns = 0; sp_dur_ns = 5_000;
        sp_depth = 0 };
      { Obs.Req.sp_name = "profile"; sp_start_ns = 5_000; sp_dur_ns = 20_000;
        sp_depth = 0 } ]
  in
  let doc = Obs.Flight.chrome_trace (mk_record ~spans "rich") in
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List es) -> es
    | _ -> Alcotest.fail "no traceEvents"
  in
  Alcotest.(check int) "one event per span" 2 (List.length events);
  (* a span-less record (a shed request) still yields a valid non-empty
     document *)
  let doc = Obs.Flight.chrome_trace (mk_record "shed") in
  (match J.member "traceEvents" doc with
  | Some (J.List [ J.Obj fields ]) ->
      Alcotest.(check bool) "synthetic event has phase" true
        (List.assoc_opt "ph" fields = Some (J.String "X"))
  | _ -> Alcotest.fail "span-less record must keep traceEvents non-empty");
  match J.member "otherData" doc with
  | Some (J.Obj fields) ->
      Alcotest.(check bool) "otherData carries the trace id" true
        (List.assoc_opt "trace_id" fields = Some (J.String "shed"))
  | _ -> Alcotest.fail "no otherData"

(* --- request-scoped span collection --- *)

let test_req_collector () =
  (* the collector works with the registry AND tracing disabled: request
     span trees must not require global instrumentation to be on *)
  Obs.disable ();
  Obs.reset ();
  Alcotest.(check bool) "inactive before start" true (not (Obs.Req.active ()));
  Alcotest.(check (list reject)) "finish without start is empty" []
    (Obs.Req.finish ());
  Obs.Req.start ();
  Alcotest.(check bool) "active after start" true (Obs.Req.active ());
  Obs.Span.with_ ~phase:"outer" (fun () ->
      Obs.Span.with_ ~phase:"inner" (fun () -> ()));
  Obs.Req.add ~name:"synthetic" ~start_ns:0 ~dur_ns:42;
  let entries = Obs.Req.finish () in
  Alcotest.(check bool) "finish uninstalls" true (not (Obs.Req.active ()));
  Alcotest.(check (list string)) "chronological order"
    [ "synthetic"; "outer"; "inner" ]
    (List.map (fun (e : Obs.Req.entry) -> e.Obs.Req.sp_name) entries);
  let depth name =
    (List.find (fun (e : Obs.Req.entry) -> e.Obs.Req.sp_name = name) entries)
      .Obs.Req.sp_depth
  in
  Alcotest.(check int) "outer at depth 0" 0 (depth "outer");
  Alcotest.(check int) "inner nested at depth 1" 1 (depth "inner");
  Alcotest.(check int) "synthetic at its given depth" 0 (depth "synthetic");
  (* the registry saw none of it *)
  Alcotest.(check int) "no span registered while disabled" 0
    (Obs.Span.calls "outer");
  (* a second finish is empty: the collector does not leak across requests *)
  Obs.Req.start ();
  Alcotest.(check (list reject)) "fresh collector is empty" []
    (Obs.Req.finish ())

let tests =
  [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json float stays float" `Quick
      test_json_floats_stay_floats;
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "span and meter" `Quick test_span_and_meter;
    Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_parses;
    Alcotest.test_case "snapshot sections" `Quick test_snapshot_shape;
    Alcotest.test_case "serial/parallel counters agree" `Quick
      test_serial_parallel_counters_agree;
    Alcotest.test_case "reset zeroes values" `Quick test_reset_zeroes;
    Alcotest.test_case "prometheus format validity" `Quick
      test_prometheus_validity;
    Alcotest.test_case "prometheus histogram contract" `Quick
      test_prometheus_histogram_contract;
    Alcotest.test_case "prometheus label escaping" `Quick
      test_prometheus_label_escaping;
    Alcotest.test_case "flight ring wraparound + slow retention" `Quick
      test_flight_wraparound;
    Alcotest.test_case "flight concurrent writers" `Quick
      test_flight_concurrent_writers;
    Alcotest.test_case "flight chrome trace" `Quick test_flight_chrome_trace;
    Alcotest.test_case "request span collector" `Quick test_req_collector ]
