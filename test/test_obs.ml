(* Tests for the observability layer (lib/obs): the JSON value type
   round-trips through its own parser, the JSONL export is parseable line by
   line, disabled mode is a no-op, and the serial and parallel profilers
   publish identical deterministic counters for the same workload. *)

module J = Obs.Json

(* Every test owns the global registry: start clean, leave clean. *)
let fresh () =
  Obs.disable ();
  Obs.reset ();
  Obs.enable ()

let teardown () =
  Obs.disable ();
  Obs.reset ()

let with_registry f =
  fresh ();
  Fun.protect ~finally:teardown f

(* --- JSON value round-trips --- *)

let roundtrip v =
  match J.of_string (J.to_string v) with
  | Ok v' -> v'
  | Error msg -> Alcotest.failf "parse error: %s" msg

let test_json_roundtrip () =
  let cases =
    [ J.Null;
      J.Bool true;
      J.Int (-42);
      J.Float 3.5;
      J.String "plain";
      J.String "esc \" \\ \n \t quote";
      J.List [ J.Int 1; J.String "two"; J.Null ];
      J.Obj
        [ ("a", J.Int 1);
          ("nested", J.Obj [ ("b", J.List [ J.Float 0.25; J.Bool false ]) ]) ]
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check string) "roundtrip" (J.to_string v)
        (J.to_string (roundtrip v)))
    cases;
  (* pretty output parses back to the same value too *)
  let v = J.Obj [ ("xs", J.List [ J.Int 1; J.Int 2 ]); ("s", J.String "hi") ] in
  match J.of_string (J.pretty v) with
  | Ok v' -> Alcotest.(check string) "pretty" (J.to_string v) (J.to_string v')
  | Error msg -> Alcotest.failf "pretty parse error: %s" msg

let test_json_floats_stay_floats () =
  (* floats must keep a decimal marker so they re-parse as floats *)
  match roundtrip (J.Float 2.0) with
  | J.Float f -> Alcotest.(check (float 0.0)) "2.0" 2.0 f
  | _ -> Alcotest.fail "Float 2.0 did not round-trip as a float"

(* --- registry basics --- *)

let test_disabled_is_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.counter "t.disabled" in
  Obs.Counter.add c 5;
  Obs.Gauge.set (Obs.gauge "t.disabled_g") 1.5;
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0
    (Obs.gauge_value "t.disabled_g");
  with_registry @@ fun () ->
  Obs.Counter.add c 5;
  Alcotest.(check int) "counter counts when enabled" 5 (Obs.Counter.value c)

let test_span_and_meter () =
  with_registry @@ fun () ->
  let m = Obs.meter "t.events" ~per:"t.work" in
  Obs.Span.with_ ~phase:"t.work" (fun () ->
      for _ = 1 to 10 do
        Obs.Meter.mark m 1
      done);
  Alcotest.(check int) "span ran once" 1 (Obs.Span.calls "t.work");
  Alcotest.(check bool) "span took time" true (Obs.Span.ns "t.work" >= 0);
  Alcotest.(check int) "meter counted" 10 (Obs.Meter.count m)

(* --- JSONL exporter --- *)

let test_jsonl_parses () =
  with_registry @@ fun () ->
  Obs.Counter.add (Obs.counter "t.c") 3;
  Obs.Gauge.set (Obs.gauge "t.g") 0.5;
  Obs.Span.with_ ~phase:"t.s" (fun () -> ());
  Obs.Meter.mark (Obs.meter "t.m" ~per:"t.s") 1;
  let lines =
    String.split_on_char '\n' (Obs.to_jsonl ())
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "has lines" true (List.length lines >= 4);
  List.iter
    (fun line ->
      match J.of_string line with
      | Ok (J.Obj fields) ->
          Alcotest.(check bool) "has kind" true (List.mem_assoc "kind" fields);
          Alcotest.(check bool) "has name" true (List.mem_assoc "name" fields)
      | Ok _ -> Alcotest.failf "JSONL line is not an object: %s" line
      | Error msg -> Alcotest.failf "JSONL line unparseable (%s): %s" msg line)
    lines;
  (* the counter's value survives the round trip *)
  let counter_line =
    List.find
      (fun l ->
        match J.of_string l with
        | Ok o ->
            J.member "kind" o = Some (J.String "counter")
            && J.member "name" o = Some (J.String "t.c")
        | Error _ -> false)
      lines
  in
  match J.of_string counter_line with
  | Ok o -> Alcotest.(check (option int)) "value" (Some 3)
              (Option.map J.get_int (J.member "value" o) |> Option.join)
  | Error _ -> assert false

let test_snapshot_shape () =
  with_registry @@ fun () ->
  Obs.Counter.add (Obs.counter "t.c") 1;
  Obs.Span.with_ ~phase:"t.s" (fun () -> ());
  let snap = Obs.snapshot () in
  List.iter
    (fun section ->
      match J.member section snap with
      | Some (J.Obj _) -> ()
      | _ -> Alcotest.failf "snapshot missing %s section" section)
    [ "counters"; "gauges"; "spans"; "meters" ]

(* --- serial vs parallel profiler determinism --- *)

let test_serial_parallel_counters_agree () =
  with_registry @@ fun () ->
  let prog = Helpers.fig27 in
  let _ = Profiler.Serial.profile prog in
  let s_acc = Obs.counter_value "profiler.accesses" in
  let s_deps = Obs.counter_value "profiler.deps" in
  Alcotest.(check bool) "serial counted accesses" true (s_acc > 0);
  Alcotest.(check bool) "serial counted deps" true (s_deps > 0);
  Obs.reset ();
  let workers = 3 in
  let _ = Profiler.Parallel.profile ~workers ~perfect:true prog in
  Alcotest.(check int) "accesses agree" s_acc
    (Obs.counter_value "profiler.accesses");
  Alcotest.(check int) "deps agree" s_deps
    (Obs.counter_value "profiler.deps");
  (* per-worker access counters partition the total *)
  let per_worker =
    List.init workers (fun i ->
        Obs.counter_value (Printf.sprintf "profiler.worker.%d.accesses" i))
  in
  Alcotest.(check int) "worker accesses sum to total" s_acc
    (List.fold_left ( + ) 0 per_worker)

let test_reset_zeroes () =
  with_registry @@ fun () ->
  Obs.Counter.add (Obs.counter "t.r") 7;
  Obs.reset ();
  Alcotest.(check int) "zeroed" 0 (Obs.counter_value "t.r")

let tests =
  [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json float stays float" `Quick
      test_json_floats_stay_floats;
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "span and meter" `Quick test_span_and_meter;
    Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_parses;
    Alcotest.test_case "snapshot sections" `Quick test_snapshot_shape;
    Alcotest.test_case "serial/parallel counters agree" `Quick
      test_serial_parallel_counters_agree;
    Alcotest.test_case "reset zeroes values" `Quick test_reset_zeroes ]
