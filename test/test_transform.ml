(* Tests for lib/transform: applying suggestions and differentially
   validating the result. The wrong-transform fixture checks that the
   validator actually rejects an unsound parallelization, not just accepts
   sound ones. *)

open Mil
module P = Transform.Parallelize
module V = Transform.Validate
module S = Discovery.Suggestion

let analyze prog = S.analyze ~threads:4 prog

let apply_first_exn report =
  match P.apply_first ~chunks:4 report with
  | Ok (t, _) -> t
  | Error skipped ->
      Alcotest.failf "nothing transformable: %s"
        (String.concat "; " (List.map snd skipped))

let has_par (p : Ast.program) =
  let rec block b = List.exists stmt b
  and stmt (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Par _ -> true
    | If (_, t, e) -> block t || block e
    | While (_, b) | For { body = b; _ } -> block b
    | _ -> false
  in
  List.exists (fun (f : Ast.func) -> block f.body) p.funcs

(* DOALL with a scalar reduction: sum of a filled array. *)
let reduction_prog =
  let open Builder in
  number
    (program ~globals:[ garray "a" 256; gscalar "s" 0 ] ~entry:"main" "red"
       [ func "main"
           [ for_ "i" (i 0) (i 256) [ seti "a" (v "i") (v "i" % i 9) ];
             for_ "i" (i 0) (i 256) [ set "s" (v "s" + "a".%[v "i"]) ];
             return (v "s") ] ])

let test_doall_reduction () =
  let report = analyze reduction_prog in
  let t = apply_first_exn report in
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec at k = k + n <= h && (String.sub hay k n = needle || at (k + 1)) in
    at 0
  in
  Alcotest.(check bool) "plan is a DOALL" true
    (contains t.plan.P.p_kind "DOALL");
  Alcotest.(check bool) "transformed has a Par" true (has_par t.transformed);
  let v = V.differential ~original:t.original ~transformed:t.transformed () in
  Alcotest.(check bool) "validation passes" true v.V.v_ok;
  Alcotest.(check int) "no racy RAW in transformed profile" 0 v.V.v_racy_raw;
  let d = V.measure ~original:t.original t.transformed in
  Alcotest.(check bool) "work lands on several threads" true
    (List.length d.V.d_threads >= 4)

(* DOACROSS: a linear recurrence over the array with a dependence-free
   prefix, so the body fissions into a parallel A-part and a serialized
   hand-off B-part. *)
let doacross_prog =
  let open Builder in
  number
    (program
       ~globals:[ garray "a" 128; garray "b" 128; gscalar "s" 1 ]
       ~entry:"main" "pipe"
       [ func "main"
           [ for_ "i" (i 0) (i 128) [ seti "a" (v "i") (v "i" + i 3) ];
             for_ "i" (i 0) (i 128)
               [ decl "t" (("a".%[v "i"] * i 5) % i 97);
                 set "s" ((v "s" * i 3 + v "t") % i 1009);
                 seti "b" (v "i") (v "s") ];
             return (v "s" + "b".%[i 100]) ] ])

let test_doacross_pipeline () =
  let report = analyze doacross_prog in
  let doacross =
    List.find_opt
      (fun (s : S.t) -> match s.kind with S.Sdoacross _ -> true | _ -> false)
      report.suggestions
  in
  match doacross with
  | None -> Alcotest.fail "no DOACROSS suggestion for the recurrence loop"
  | Some s -> (
      match P.apply ~chunks:4 report s with
      | Error e -> Alcotest.failf "DOACROSS not transformable: %s" e
      | Ok t ->
          Alcotest.(check bool) "transformed has a Par" true
            (has_par t.transformed);
          let v =
            V.differential ~original:t.original ~transformed:t.transformed ()
          in
          Alcotest.(check bool) "validation passes" true v.V.v_ok)

(* Recursive fork-join (BOTS fib shape). *)
let forkjoin_prog =
  let open Builder in
  number
    (program ~entry:"main" "fibs"
       [ func "fib" ~params:[ "n" ]
           [ when_ (v "n" < i 2) [ return (v "n") ];
             decl "x" (call "fib" [ v "n" - i 1 ]);
             decl "y" (call "fib" [ v "n" - i 2 ]);
             return (v "x" + v "y") ];
         func "main" [ return (call "fib" [ i 10 ]) ] ])

let test_recursive_forkjoin () =
  let report = analyze forkjoin_prog in
  let spmd =
    List.find_opt
      (fun (s : S.t) -> match s.kind with S.Sspmd _ -> true | _ -> false)
      report.suggestions
  in
  match spmd with
  | None -> Alcotest.fail "no SPMD suggestion for recursive fib"
  | Some s -> (
      match P.apply ~chunks:4 report s with
      | Error e -> Alcotest.failf "fork-join not transformable: %s" e
      | Ok t ->
          Alcotest.(check bool) "transformed has a Par" true
            (has_par t.transformed);
          let v =
            V.differential ~original:t.original ~transformed:t.transformed ()
          in
          Alcotest.(check bool) "validation passes" true v.V.v_ok)

(* The wrong transform: chunking a true recurrence (prefix sum) must be
   caught by differential validation — chunk k reads a value chunk k-1 has
   not written yet. *)
let recurrence_prog =
  let open Builder in
  number
    (program ~globals:[ garray "a" 200 ] ~entry:"main" "rec"
       [ func "main"
           [ for_ "i" (i 0) (i 200) [ seti "a" (v "i") (v "i" % i 13) ];
             for_ "i" (i 1) (i 200)
               [ seti "a" (v "i") ("a".%[v "i"] + "a".%[v "i" - i 1]) ];
             return "a".%[i 199] ] ])

let recurrence_line =
  (* line of the second (recurrence) loop *)
  let find (b : Ast.block) =
    List.filter_map
      (fun (s : Ast.stmt) ->
        match s.Ast.node with Ast.For { lo = Ast.Int 1; _ } -> Some s.line | _ -> None)
      b
  in
  match recurrence_prog.funcs with
  | [ f ] -> List.hd (find f.body)
  | _ -> assert false

let test_wrong_transform_rejected () =
  match P.naive_doall ~chunks:4 recurrence_prog ~line:recurrence_line with
  | Error e -> Alcotest.failf "naive chunking unexpectedly refused: %s" e
  | Ok transformed ->
      let v =
        V.differential ~original:recurrence_prog ~transformed ()
      in
      Alcotest.(check bool) "validation rejects the recurrence chunking" false
        v.V.v_ok;
      Alcotest.(check bool) "a state mismatch or new race is reported" true
        (v.V.v_mismatches <> [] || v.V.v_new_racy <> [])

(* Validation outcomes are counted in the Obs registry. *)
let test_validation_counted () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let report = analyze reduction_prog in
  let t = apply_first_exn report in
  ignore (V.differential ~original:t.original ~transformed:t.transformed ());
  (match P.naive_doall ~chunks:4 recurrence_prog ~line:recurrence_line with
  | Ok transformed ->
      ignore (V.differential ~original:recurrence_prog ~transformed ())
  | Error _ -> ());
  Alcotest.(check bool) "pass counted" true
    (Obs.counter_value "transform.validate.pass" >= 1);
  Alcotest.(check bool) "fail counted" true
    (Obs.counter_value "transform.validate.fail" >= 1)

let tests =
  [ Alcotest.test_case "DOALL with reduction" `Quick test_doall_reduction;
    Alcotest.test_case "DOACROSS pipeline" `Quick test_doacross_pipeline;
    Alcotest.test_case "recursive fork-join" `Quick test_recursive_forkjoin;
    Alcotest.test_case "wrong transform rejected" `Quick
      test_wrong_transform_rejected;
    Alcotest.test_case "validation outcomes counted" `Quick
      test_validation_counted ]
