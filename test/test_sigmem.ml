(* Tests for shadow memories: signature semantics, collisions, lifetime
   removal, the perfect baseline, and the Eq. 2.2 FPR predictor. *)

module Sig = Sigmem.Signature
module Perf = Sigmem.Perfect
module Cell = Sigmem.Cell

let cell line =
  { Cell.line; var = Trace.Intern.Sym.intern "v"; thread = 0; time = line + 1;
    op = line; lstack = Trace.Intern.Lstack.empty; locked = false }

let test_signature_basic () =
  let s = Sig.create ~slots:64 in
  Alcotest.(check bool) "initially empty" true (Cell.is_empty (Sig.last_read s ~addr:5));
  Sig.set_read s ~addr:5 (cell 10);
  Alcotest.(check int) "read slot" 10 (Sig.last_read s ~addr:5).Cell.line;
  Alcotest.(check bool) "write slot still empty" true
    (Cell.is_empty (Sig.last_write s ~addr:5));
  Sig.set_write s ~addr:5 (cell 20);
  Alcotest.(check int) "write slot" 20 (Sig.last_write s ~addr:5).Cell.line;
  Alcotest.(check int) "slots used" 2 (Sig.slots_used s);
  Sig.remove s ~addr:5;
  Alcotest.(check bool) "removed" true (Cell.is_empty (Sig.last_read s ~addr:5));
  Alcotest.(check int) "slots used after removal" 0 (Sig.slots_used s)

let test_signature_collision () =
  (* With a single slot every address collides: membership checks see the
     other address's entry — the false-positive mechanism of §2.3.2. *)
  let s = Sig.create ~slots:1 in
  Sig.set_write s ~addr:1 (cell 11);
  Alcotest.(check int) "collision visible" 11 (Sig.last_write s ~addr:2).Cell.line;
  (* removal through a colliding address also clears the slot *)
  Sig.remove s ~addr:2;
  Alcotest.(check bool) "collision removal" true
    (Cell.is_empty (Sig.last_write s ~addr:1))

let test_signature_distribution () =
  (* The hash must behave like a random function on dense bump-allocator
     addresses: 512 balls into 1024 bins occupy ~403 bins in expectation
     (1 - (1 - 1/m)^n). Injective low-bit hashing would occupy 512. *)
  let slots = 1024 in
  let seen = Hashtbl.create 256 in
  for a = 0 to 511 do
    Hashtbl.replace seen (Sig.hash_addr a slots) ()
  done;
  let d = Hashtbl.length seen in
  Alcotest.(check bool)
    (Printf.sprintf "occupancy %d near the binomial expectation 403" d)
    true (d > 340 && d < 470)

let test_perfect () =
  let s = Perf.create ~slots:0 in
  Perf.set_write s ~addr:1 (cell 11);
  Perf.set_write s ~addr:1025 (cell 12);
  Alcotest.(check int) "no collisions ever" 11 (Perf.last_write s ~addr:1).Cell.line;
  Alcotest.(check int) "second addr separate" 12
    (Perf.last_write s ~addr:1025).Cell.line;
  Perf.remove s ~addr:1;
  Alcotest.(check bool) "removed" true (Cell.is_empty (Perf.last_write s ~addr:1));
  Alcotest.(check int) "other untouched" 12 (Perf.last_write s ~addr:1025).Cell.line

let test_fpr_predictor () =
  (* Eq. 2.2: monotone in n, anti-monotone in m, exact at the extremes. *)
  let p = Sigmem.Shadow.predicted_fpr in
  Alcotest.(check (float 1e-9)) "n=0" 0.0 (p ~slots:100 ~addresses:0);
  Alcotest.(check bool) "monotone in addresses" true
    (p ~slots:100 ~addresses:50 < p ~slots:100 ~addresses:200);
  Alcotest.(check bool) "anti-monotone in slots" true
    (p ~slots:1000 ~addresses:100 < p ~slots:100 ~addresses:100);
  Alcotest.(check bool) "valid probability" true
    (let v = p ~slots:7 ~addresses:1000 in v >= 0.0 && v <= 1.0)

let test_fpr_predictor_vs_measured () =
  (* Insert n random addresses into m slots; the measured probability that a
     fresh probe hits an occupied slot should be near Eq. 2.2's prediction. *)
  let slots = 256 and n = 128 in
  let s = Sig.create ~slots in
  let rng = ref 123456789 in
  let next () =
    rng := (!rng * 1103515245 + 12345) land 0x3FFFFFFF;
    !rng
  in
  for _ = 1 to n do
    Sig.set_write s ~addr:(next ()) (cell 1)
  done;
  let occupied = float_of_int (Sig.slots_used s) /. float_of_int slots in
  let predicted = Sigmem.Shadow.predicted_fpr ~slots ~addresses:n in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f within 0.1 of predicted %.3f" occupied predicted)
    true
    (abs_float (occupied -. predicted) < 0.1)

let qcheck_signature_last_write_wins =
  let open QCheck in
  Test.make ~name:"signature returns the most recent write for an address"
    ~count:200
    (make Gen.(list_size (int_range 1 50) (pair (int_bound 31) (int_bound 1000))))
    (fun writes ->
      (* big enough signature that these few addresses never collide *)
      let s = Sig.create ~slots:4096 in
      let last = Hashtbl.create 8 in
      List.iter
        (fun (addr, line) ->
          Sig.set_write s ~addr (cell line);
          Hashtbl.replace last addr line)
        writes;
      Hashtbl.fold
        (fun addr line ok -> ok && (Sig.last_write s ~addr).Cell.line = line)
        last true)

let tests =
  [ Alcotest.test_case "signature basics" `Quick test_signature_basic;
    Alcotest.test_case "signature collisions" `Quick test_signature_collision;
    Alcotest.test_case "hash distribution" `Quick test_signature_distribution;
    Alcotest.test_case "perfect shadow" `Quick test_perfect;
    Alcotest.test_case "Eq 2.2 predictor" `Quick test_fpr_predictor;
    Alcotest.test_case "Eq 2.2 vs measured occupancy" `Quick
      test_fpr_predictor_vs_measured;
    QCheck_alcotest.to_alcotest qcheck_signature_last_write_wins ]
