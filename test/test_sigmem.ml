(* Tests for shadow memories: signature semantics, collisions, lifetime
   removal, the perfect baseline (growth, tombstones), the paged backend,
   slot packing, and the Eq. 2.2 FPR predictor. *)

module Sig = Sigmem.Signature
module Perf = Sigmem.Perfect
module Paged = Sigmem.Two_level
module Store = Sigmem.Store
module Cell = Sigmem.Cell

let cell line =
  Cell.v ~line ~var:(Trace.Intern.Sym.intern "v") ~thread:0 ~time:(line + 1)
    ~op:line ~lstack:Trace.Intern.Lstack.empty ~locked:false

(* Generic helpers over the revised handle-based interface: every probe
   decodes both slots into fresh scratches, so the assertions below read the
   decoded state, exactly as the engine does. *)
let probe (type s) (module S : Sigmem.Shadow.S with type t = s) s ~addr =
  let r = Cell.scratch () and w = Cell.scratch () in
  let h = S.load s ~addr r w in
  (h, r, w)

let set_read (type s) (module S : Sigmem.Shadow.S with type t = s) s ~addr c =
  let h, _, _ = probe (module S) s ~addr in
  S.store_read s h c

let set_write (type s) (module S : Sigmem.Shadow.S with type t = s) s ~addr c =
  let h, _, _ = probe (module S) s ~addr in
  S.store_write s h c

let last_read (type s) (module S : Sigmem.Shadow.S with type t = s) s ~addr =
  let _, r, _ = probe (module S) s ~addr in
  r

let last_write (type s) (module S : Sigmem.Shadow.S with type t = s) s ~addr =
  let _, _, w = probe (module S) s ~addr in
  w

let msig = (module Sig : Sigmem.Shadow.S with type t = Sig.t)
let mperf = (module Perf : Sigmem.Shadow.S with type t = Perf.t)
let mpaged = (module Paged : Sigmem.Shadow.S with type t = Paged.t)

let test_store_roundtrip () =
  (* Every field survives the packed 6-int slot encoding, including the
     locked bit sharing a word with the timestamp. *)
  let st = Store.create 4 in
  let c =
    Cell.v ~line:123 ~var:(Trace.Intern.Sym.intern "roundtrip") ~thread:7
      ~time:987654 ~op:42 ~lstack:3 ~locked:true
  in
  Store.store st (Store.write_base 2) c;
  let d = Cell.scratch () in
  Store.load st (Store.write_base 2) d;
  Alcotest.(check int) "line" c.Cell.line d.Cell.line;
  Alcotest.(check int) "var" c.Cell.var d.Cell.var;
  Alcotest.(check int) "thread" c.Cell.thread d.Cell.thread;
  Alcotest.(check int) "time" c.Cell.time d.Cell.time;
  Alcotest.(check int) "op" c.Cell.op d.Cell.op;
  Alcotest.(check int) "lstack" c.Cell.lstack d.Cell.lstack;
  Alcotest.(check bool) "locked" c.Cell.locked d.Cell.locked;
  (* the adjacent read slot of the same pair is untouched *)
  Store.load st (Store.read_base 2) d;
  Alcotest.(check bool) "read slot empty" true (Cell.is_empty d);
  Store.clear_pair st 2;
  Store.load st (Store.write_base 2) d;
  Alcotest.(check bool) "cleared" true (Cell.is_empty d)

let test_signature_basic () =
  let s = Sig.create ~slots:64 in
  Alcotest.(check bool) "initially empty" true
    (Cell.is_empty (last_read msig s ~addr:5));
  set_read msig s ~addr:5 (cell 10);
  Alcotest.(check int) "read slot" 10 (last_read msig s ~addr:5).Cell.line;
  Alcotest.(check bool) "write slot still empty" true
    (Cell.is_empty (last_write msig s ~addr:5));
  set_write msig s ~addr:5 (cell 20);
  Alcotest.(check int) "write slot" 20 (last_write msig s ~addr:5).Cell.line;
  Alcotest.(check int) "slots used" 2 (Sig.slots_used s);
  Sig.remove s ~addr:5;
  Alcotest.(check bool) "removed" true
    (Cell.is_empty (last_read msig s ~addr:5));
  Alcotest.(check int) "slots used after removal" 0 (Sig.slots_used s)

let test_signature_collision () =
  (* With a single slot every address collides: membership checks see the
     other address's entry — the false-positive mechanism of §2.3.2. *)
  let s = Sig.create ~slots:1 in
  set_write msig s ~addr:1 (cell 11);
  Alcotest.(check int) "collision visible" 11
    (last_write msig s ~addr:2).Cell.line;
  (* removal through a colliding address also clears the slot *)
  Sig.remove s ~addr:2;
  Alcotest.(check bool) "collision removal" true
    (Cell.is_empty (last_write msig s ~addr:1))

let test_signature_distribution () =
  (* The hash must behave like a random function on dense bump-allocator
     addresses: 512 balls into 1024 bins occupy ~403 bins in expectation
     (1 - (1 - 1/m)^n). Injective low-bit hashing would occupy 512. *)
  let slots = 1024 in
  let seen = Hashtbl.create 256 in
  for a = 0 to 511 do
    Hashtbl.replace seen (Sig.hash_addr a slots) ()
  done;
  let d = Hashtbl.length seen in
  Alcotest.(check bool)
    (Printf.sprintf "occupancy %d near the binomial expectation 403" d)
    true (d > 340 && d < 470)

let test_perfect () =
  let s = Perf.create ~slots:0 in
  set_write mperf s ~addr:1 (cell 11);
  set_write mperf s ~addr:1025 (cell 12);
  Alcotest.(check int) "no collisions ever" 11
    (last_write mperf s ~addr:1).Cell.line;
  Alcotest.(check int) "second addr separate" 12
    (last_write mperf s ~addr:1025).Cell.line;
  Perf.remove s ~addr:1;
  Alcotest.(check bool) "removed" true
    (Cell.is_empty (last_write mperf s ~addr:1));
  Alcotest.(check int) "other untouched" 12
    (last_write mperf s ~addr:1025).Cell.line

let test_perfect_growth () =
  (* Push well past the initial capacity: the open-addressed table must
     rehash without losing or corrupting any entry. *)
  let s = Perf.create ~slots:0 in
  let n = 10_000 in
  for a = 0 to n - 1 do
    set_write mperf s ~addr:(a * 7) (cell (a land 0xFFFF))
  done;
  Alcotest.(check bool) "grew past initial capacity" true (Perf.capacity s > 1024);
  Alcotest.(check int) "all live" n (Perf.live s);
  let ok = ref true in
  for a = 0 to n - 1 do
    if (last_write mperf s ~addr:(a * 7)).Cell.line <> a land 0xFFFF then
      ok := false
  done;
  Alcotest.(check bool) "every entry intact after rehash" true !ok

let test_perfect_tombstones () =
  (* Insert/remove churn over a fixed working set must not grow the table:
     tombstones are recycled by inserts and squeezed on rebuild. *)
  let s = Perf.create ~slots:0 in
  for round = 0 to 99 do
    for a = 0 to 99 do
      set_write mperf s ~addr:a (cell round)
    done;
    for a = 0 to 99 do
      Perf.remove s ~addr:a
    done
  done;
  Alcotest.(check int) "empty after churn" 0 (Perf.live s);
  Alcotest.(check bool) "capacity stayed small" true (Perf.capacity s <= 2048);
  set_write mperf s ~addr:3 (cell 77);
  Alcotest.(check int) "usable after churn" 77
    (last_write mperf s ~addr:3).Cell.line

let test_paged () =
  let s = Paged.create ~slots:0 in
  (* addresses far enough apart to land on distinct pages *)
  set_write mpaged s ~addr:5 (cell 11);
  set_read mpaged s ~addr:5 (cell 12);
  set_write mpaged s ~addr:100_000 (cell 13);
  Alcotest.(check int) "first page write" 11
    (last_write mpaged s ~addr:5).Cell.line;
  Alcotest.(check int) "first page read" 12
    (last_read mpaged s ~addr:5).Cell.line;
  Alcotest.(check int) "distant page" 13
    (last_write mpaged s ~addr:100_000).Cell.line;
  Alcotest.(check bool) "two pages allocated" true (Paged.pages_allocated s >= 2);
  Paged.remove s ~addr:5;
  Alcotest.(check bool) "removed" true
    (Cell.is_empty (last_write mpaged s ~addr:5));
  Alcotest.(check int) "other page untouched" 13
    (last_write mpaged s ~addr:100_000).Cell.line;
  (* removing a never-touched address must not allocate a page *)
  let pages = Paged.pages_allocated s in
  Paged.remove s ~addr:9_999_999;
  Alcotest.(check int) "remove allocates no page" pages (Paged.pages_allocated s)

let test_fpr_predictor () =
  (* Eq. 2.2: monotone in n, anti-monotone in m, exact at the extremes. *)
  let p = Sigmem.Shadow.predicted_fpr in
  Alcotest.(check (float 1e-9)) "n=0" 0.0 (p ~slots:100 ~addresses:0);
  Alcotest.(check bool) "monotone in addresses" true
    (p ~slots:100 ~addresses:50 < p ~slots:100 ~addresses:200);
  Alcotest.(check bool) "anti-monotone in slots" true
    (p ~slots:1000 ~addresses:100 < p ~slots:100 ~addresses:100);
  Alcotest.(check bool) "valid probability" true
    (let v = p ~slots:7 ~addresses:1000 in v >= 0.0 && v <= 1.0)

let test_fpr_predictor_vs_measured () =
  (* Insert n random addresses into m slots; the measured probability that a
     fresh probe hits an occupied slot should be near Eq. 2.2's prediction. *)
  let slots = 256 and n = 128 in
  let s = Sig.create ~slots in
  let rng = ref 123456789 in
  let next () =
    rng := (!rng * 1103515245 + 12345) land 0x3FFFFFFF;
    !rng
  in
  for _ = 1 to n do
    set_write msig s ~addr:(next ()) (cell 1)
  done;
  let occupied = float_of_int (Sig.slots_used s) /. float_of_int slots in
  let predicted = Sigmem.Shadow.predicted_fpr ~slots ~addresses:n in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f within 0.1 of predicted %.3f" occupied predicted)
    true
    (abs_float (occupied -. predicted) < 0.1)

let qcheck_last_write_wins (type s) name
    (module S : Sigmem.Shadow.S with type t = s) slots =
  let open QCheck in
  Test.make
    ~name:(name ^ " returns the most recent write for an address")
    ~count:200
    (make Gen.(list_size (int_range 1 50) (pair (int_bound 31) (int_bound 1000))))
    (fun writes ->
      (* for the signature: big enough that these few addresses never
         collide; exact backends hold regardless *)
      let s = S.create ~slots in
      let last = Hashtbl.create 8 in
      List.iter
        (fun (addr, line) ->
          set_write (module S) s ~addr (cell line);
          Hashtbl.replace last addr line)
        writes;
      Hashtbl.fold
        (fun addr line ok ->
          ok && (last_write (module S) s ~addr).Cell.line = line)
        last true)

let tests =
  [ Alcotest.test_case "store packing roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "signature basics" `Quick test_signature_basic;
    Alcotest.test_case "signature collisions" `Quick test_signature_collision;
    Alcotest.test_case "hash distribution" `Quick test_signature_distribution;
    Alcotest.test_case "perfect shadow" `Quick test_perfect;
    Alcotest.test_case "perfect growth" `Quick test_perfect_growth;
    Alcotest.test_case "perfect tombstone churn" `Quick test_perfect_tombstones;
    Alcotest.test_case "paged shadow" `Quick test_paged;
    Alcotest.test_case "Eq 2.2 predictor" `Quick test_fpr_predictor;
    Alcotest.test_case "Eq 2.2 vs measured occupancy" `Quick
      test_fpr_predictor_vs_measured;
    QCheck_alcotest.to_alcotest
      (qcheck_last_write_wins "signature" msig 4096);
    QCheck_alcotest.to_alcotest (qcheck_last_write_wins "perfect" mperf 0);
    QCheck_alcotest.to_alcotest (qcheck_last_write_wins "paged" mpaged 0) ]
