open Mil

let prog =
  let open Builder in
  number
    (program ~entry:"main" "hoistbug"
       [ func "f" ~params:[ "x" ]
           [ while_ (v "x" < i 10) [ decl "x" (i 99); return (i 1) ];
             return (i 2) ];
         func "main" [ return (call "f" [ i 0 ]) ] ])

let () =
  let before = (Interp.run prog).r_result in
  let r = match Pass.run ~passes:[ "hoist" ] prog with
    | Ok r -> r
    | Error e -> failwith e
  in
  let after = (Interp.run r.program).r_result in
  Printf.printf "changes=%d before=%s after=%s\n" r.changes
    (match before with Some n -> string_of_int n | None -> "none")
    (match after with Some n -> string_of_int n | None -> "none");
  print_string (Pretty.render_program r.program)
