(* The DiscoPoP command-line tool: profile MIL workloads, construct CUs,
   discover and rank parallelism, and hunt for races — the user-facing
   counterpart of the paper's three-phase workflow (Fig. 1.3). *)

open Cmdliner

let all_workloads =
  Workloads.Textbook.all @ Workloads.Nas.all @ Workloads.Starbench.all
  @ Workloads.Bots.all @ Workloads.Apps.all @ Workloads.Splash2x.all
  @ Workloads.Numerics.all @ Workloads.Parsec.all

let find_workload name =
  match
    List.find_opt (fun (w : Workloads.Registry.t) -> w.name = name) all_workloads
  with
  | Some w -> Ok w
  | None ->
      Error
        (Printf.sprintf "unknown workload %s (try `discopop list`)" name)

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let size_arg =
  Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N"
         ~doc:"Override the workload's input size.")

let sig_arg =
  Arg.(value & opt (some int) None & info [ "signature" ] ~docv:"SLOTS"
         ~doc:"Use a signature shadow memory with SLOTS slots instead of the \
               exact shadow memory.")

let skip_arg =
  Arg.(value & flag & info [ "skip" ]
         ~doc:"Enable skipping of repeatedly executed memory operations (§2.4).")

let workers_arg =
  Arg.(value & opt int 0 & info [ "workers" ] ~docv:"W"
         ~doc:"Profile with the lock-free parallel profiler using W worker \
               domains (0 = serial).")

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline msg;
      exit 1

(* --stats: enable the observability layer for the run and write the
   collected phase timings / counters / gauges to FILE as JSON. *)
let stats_arg =
  Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE"
         ~doc:"Write machine-readable run statistics (phase timings, \
               counters, gauges; see README \"Observability & CI\") to FILE \
               as JSON.")

(* --trace: enable per-domain timeline tracing for the run and write the
   collected events to FILE as Chrome Trace Event JSON (chrome://tracing /
   Perfetto-loadable; validate with `discopop trace-check`). *)
let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a per-domain event timeline (phase spans, worker chunk \
               consumption, queue depths; see README \"Tracing & explain\") \
               to FILE as Chrome Trace Event JSON, loadable in \
               chrome://tracing or Perfetto.")

let with_obs ~stats ~trace f =
  (match stats with Some _ -> Obs.enable () | None -> ());
  (match trace with
  | Some _ ->
      Obs.Trace.enable ();
      Obs.Trace.set_track "main"
  | None -> ());
  let r = f () in
  (* Allocation counters ride along in every --stats export. *)
  Obs.publish_gc ();
  let write what path write_fn =
    try
      write_fn path;
      Printf.eprintf "wrote %s\n" path
    with Sys_error msg ->
      Printf.eprintf "cannot write %s file: %s\n" what msg;
      exit 1
  in
  Option.iter (fun p -> write "stats" p Obs.write_json) stats;
  Option.iter (fun p -> write "trace" p Obs.Trace.write) trace;
  r


let shadow_of = function
  | Some slots -> Profiler.Engine.Signature slots
  | None -> Profiler.Engine.Perfect

(* list *)
let list_cmd =
  let doc = "List the bundled workload programs." in
  let run () =
    List.iter
      (fun (w : Workloads.Registry.t) ->
        Printf.printf "%-14s %-10s size=%-6d %s\n" w.name w.suite w.default_size
          (if w.parallel_target then "(multi-threaded target)" else ""))
      all_workloads
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* source *)
let source_cmd =
  let doc = "Print a workload's numbered source." in
  let run name size =
    let w = or_die (find_workload name) in
    print_string (Mil.Pretty.render_program (Workloads.Registry.program ?size w))
  in
  Cmd.v (Cmd.info "source" ~doc) Term.(const run $ workload_arg $ size_arg)

(* profile *)
let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Also write the merged dependences to FILE (discopop-deps \
               format, readable with `discopop read-deps`).")

let profile_cmd =
  let doc = "Run the data-dependence profiler and print the dependence report." in
  let run name size signature skip workers output stats trace =
    let w = or_die (find_workload name) in
    let prog = Workloads.Registry.program ?size w in
    let save deps =
      match output with
      | None -> ()
      | Some path ->
          Profiler.Depfile.write path deps;
          Printf.eprintf "wrote %s\n" path
    in
    with_obs ~stats ~trace @@ fun () ->
    let deps, pet =
      if workers > 0 then begin
        let r =
          Profiler.Parallel.profile ~workers
            ~perfect:(signature = None)
            ?shadow_slots:signature ~skip prog
        in
        save r.deps;
        Printf.printf
          "# parallel profiler: %d workers, %d accesses, %d deps, %d redistributions\n"
          workers r.accesses
          (Profiler.Dep.Set_.cardinal r.deps)
          r.redistributions;
        print_string
          (Profiler.Report.render
             ~threads:w.parallel_target
             ~control:(Profiler.Report.control_of_pet r.pet)
             r.deps);
        (r.deps, r.pet)
      end
      else begin
        let r = Profiler.Serial.profile ~shadow:(shadow_of signature) ~skip prog in
        save r.deps;
        Printf.printf "# serial profiler: %d accesses, %d deps (merging %.1fx)\n"
          r.accesses
          (Profiler.Dep.Set_.cardinal r.deps)
          r.merging_factor;
        if skip then
          Printf.printf "# skipped: %d reads, %d writes\n"
            r.skip_stats.Profiler.Engine.reads_skipped
            r.skip_stats.Profiler.Engine.writes_skipped;
        print_string (Profiler.Serial.report ~threads:w.parallel_target r);
        (r.deps, r.pet)
      end
    in
    (* With --stats, also run the downstream phases over the profiled
       dependences so the export carries the complete pipeline cost
       breakdown (profiling, CU construction, discovery). *)
    if stats <> None then begin
      let st =
        Obs.Span.with_ ~phase:"static" (fun () -> Mil.Static.analyze prog)
      in
      let cures = Cunit.Top_down.build st in
      ignore (Discovery.Loops.analyze_all st cures deps pet)
    end
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ workload_arg $ size_arg $ sig_arg $ skip_arg $ workers_arg
      $ out_arg $ stats_arg $ trace_arg)

(* read-deps *)
let read_deps_cmd =
  let doc = "Read a dependence file back and print it in the report format." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let explain_arg =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Print the ranked provenance table (as `discopop explain`) \
                 instead of the dependence report; witness columns are \
                 populated from the provenance persisted in v2 files.")
  in
  let run file explain =
    let deps = Profiler.Depfile.read file in
    Printf.printf "# %d records, %d instances\n"
      (Profiler.Dep.Set_.cardinal deps)
      (Profiler.Dep.Set_.occurrences deps);
    if explain then print_string (Profiler.Report.render_explain deps)
    else print_string (Profiler.Report.render deps)
  in
  Cmd.v (Cmd.info "read-deps" ~doc) Term.(const run $ file_arg $ explain_arg)

(* pet *)
let pet_cmd =
  let doc = "Print the program execution tree (§2.3.6)." in
  let run name size trace =
    let w = or_die (find_workload name) in
    with_obs ~stats:None ~trace @@ fun () ->
    let r = Profiler.Serial.profile (Workloads.Registry.program ?size w) in
    print_string (Profiler.Pet.to_string r.pet)
  in
  Cmd.v (Cmd.info "pet" ~doc)
    Term.(const run $ workload_arg $ size_arg $ trace_arg)

(* cus *)
let cus_cmd =
  let doc = "Construct computational units (top-down) and print them." in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit the whole-program CU graph \
                                             as graphviz.")
  in
  let run name size dot stats trace =
    let w = or_die (find_workload name) in
    let prog = Workloads.Registry.program ?size w in
    with_obs ~stats ~trace @@ fun () ->
    let st = Obs.Span.with_ ~phase:"static" (fun () -> Mil.Static.analyze prog) in
    let res = Cunit.Top_down.build st in
    if dot then begin
      let r = Profiler.Serial.profile prog in
      let g =
        Cunit.Graph.build ~cus:res.Cunit.Top_down.cus ~deps:r.Profiler.Serial.deps ()
      in
      print_string (Cunit.Graph.to_dot g)
    end
    else
      List.iter
        (fun cu -> print_endline (Cunit.Cu.to_string cu))
        res.Cunit.Top_down.cus
  in
  Cmd.v (Cmd.info "cus" ~doc)
    Term.(const run $ workload_arg $ size_arg $ dot_arg $ stats_arg $ trace_arg)

(* discover *)
let discover_cmd =
  let doc = "Run the full pipeline and print ranked parallelization suggestions." in
  let threads_arg =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"T"
           ~doc:"Thread count assumed by the local-speedup metric.")
  in
  let run name size threads stats trace =
    let w = or_die (find_workload name) in
    with_obs ~stats ~trace @@ fun () ->
    let report =
      Discovery.Suggestion.analyze ~threads (Workloads.Registry.program ?size w)
    in
    print_string (Discovery.Suggestion.render report);
    print_endline "\nloop classification:";
    List.iter
      (fun a -> Printf.printf "  %s\n" (Discovery.Loops.to_string a))
      report.Discovery.Suggestion.loops
  in
  Cmd.v (Cmd.info "discover" ~doc)
    Term.(const run $ workload_arg $ size_arg $ threads_arg $ stats_arg
          $ trace_arg)

(* explain *)
let explain_cmd =
  let doc =
    "Profile a workload and explain every reported dependence: a ranked \
     provenance table with each record's first dynamic witness and \
     false-positive risk, or (with --dot) a risk-annotated CU graph."
  in
  let top_arg =
    Arg.(value & opt int 0 & info [ "top" ] ~docv:"N"
           ~doc:"Show only the N hottest records (0 = all).")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ]
           ~doc:"Emit the CU graph as graphviz with risk-annotated \
                 dependence edges instead of the table; edges at or above \
                 the risk threshold render dashed.")
  in
  let threshold_arg =
    Arg.(value & opt float 0.5 & info [ "risk-threshold" ] ~docv:"R"
           ~doc:"Risk at or above which a --dot edge renders dashed.")
  in
  let run name size signature skip workers top dot threshold stats trace =
    let w = or_die (find_workload name) in
    let prog = Workloads.Registry.program ?size w in
    with_obs ~stats ~trace @@ fun () ->
    let deps, shadow_name =
      if workers > 0 then begin
        let r =
          Profiler.Parallel.profile ~workers
            ~perfect:(signature = None)
            ?shadow_slots:signature ~skip prog
        in
        ( r.deps,
          match signature with
          | Some s -> Printf.sprintf "signature(%d slots, %d workers)" s workers
          | None -> Printf.sprintf "perfect (%d workers)" workers )
      end
      else begin
        let r = Profiler.Serial.profile ~shadow:(shadow_of signature) ~skip prog in
        ( r.deps,
          match signature with
          | Some s -> Printf.sprintf "signature(%d slots)" s
          | None -> "perfect" )
      end
    in
    if dot then begin
      let st = Obs.Span.with_ ~phase:"static" (fun () -> Mil.Static.analyze prog) in
      let res = Cunit.Top_down.build st in
      let g = Cunit.Graph.build ~cus:res.Cunit.Top_down.cus ~deps () in
      print_string (Cunit.Graph.to_dot ~risk_threshold:threshold g)
    end
    else begin
      Printf.printf "# explain %s: shadow=%s%s\n" w.name shadow_name
        (if skip then ", skip" else "");
      print_string
        (Profiler.Report.render_explain ~top ~threads:w.parallel_target deps)
    end
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ workload_arg $ size_arg $ sig_arg $ skip_arg $ workers_arg
      $ top_arg $ dot_arg $ threshold_arg $ stats_arg $ trace_arg)

(* trace-check *)
let trace_check_cmd =
  let doc =
    "Validate a Chrome Trace Event file produced by --trace: parseable by \
     the bundled JSON parser, non-empty, required fields present, \
     timestamps monotone per track."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file =
    let contents =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let die msg =
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
    in
    match Obs.Json.of_string contents with
    | Error msg -> die (Printf.sprintf "unparseable JSON (%s)" msg)
    | Ok j -> (
        match Obs.Json.member "traceEvents" j with
        | Some (Obs.Json.List []) -> die "traceEvents is empty"
        | Some (Obs.Json.List evs) ->
            (* Buffers are appended in clock order, so within one (pid, tid)
               track the exported ts sequence must be non-decreasing. *)
            let last_ts : (int * int, float) Hashtbl.t = Hashtbl.create 8 in
            List.iteri
              (fun i ev ->
                let field name =
                  match Obs.Json.member name ev with
                  | Some v -> v
                  | None ->
                      die (Printf.sprintf "event %d lacks field %S" i name)
                in
                let int_field name =
                  match Obs.Json.get_int (field name) with
                  | Some v -> v
                  | None -> die (Printf.sprintf "event %d: %S not an int" i name)
                in
                ignore (field "name");
                (match Obs.Json.get_string (field "ph") with
                | Some ("B" | "E" | "i" | "C" | "M" | "X") -> ()
                | _ -> die (Printf.sprintf "event %d: bad \"ph\"" i));
                let ts =
                  match Obs.Json.get_float (field "ts") with
                  | Some t -> t
                  | None -> die (Printf.sprintf "event %d: \"ts\" not a number" i)
                in
                let track = (int_field "pid", int_field "tid") in
                (match Hashtbl.find_opt last_ts track with
                | Some prev when ts < prev ->
                    die
                      (Printf.sprintf
                         "event %d: ts %.3f goes backwards on track %d/%d" i ts
                         (fst track) (snd track))
                | _ -> ());
                Hashtbl.replace last_ts track ts)
              evs;
            Printf.printf "trace ok: %d events, %d tracks\n" (List.length evs)
              (Hashtbl.length last_ts)
        | _ -> die "no traceEvents list")
  in
  Cmd.v (Cmd.info "trace-check" ~doc) Term.(const run $ file_arg)

(* check-bench *)
let check_bench_cmd =
  let doc =
    "Compare a BENCH_*.json summary against a checked-in perf baseline. The \
     baseline maps metric names to an expected value and a tolerated \
     [min_ratio, max_ratio] band on current/expected — or, for metrics whose \
     healthy value is ~0 (allocation meters), an absolute cap \
     {\"max_abs\": c}. Any metric outside its band or cap fails the check \
     (exit 1). Metrics are resolved in the summary's gauges, then counters. \
     With --update the banded values are instead rewritten in place from the \
     summary (bands, caps and the comment are preserved) so the baseline can \
     be refreshed from a reference run without hand-editing."
  in
  let bench_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BENCH_JSON")
  in
  let baseline_arg =
    Arg.(required & opt (some file) None & info [ "baseline" ] ~docv:"FILE"
           ~doc:"The baseline JSON: {\"metrics\": {name: {\"value\": v, \
                 \"min_ratio\": r, \"max_ratio\": R} | {\"max_abs\": c}}}.")
  in
  let update_arg =
    Arg.(value & flag & info [ "update" ]
           ~doc:"Rewrite the baseline's metric values in place from \
                 BENCH_JSON instead of gating against them. Ratio bands, \
                 max_abs caps and the comment are preserved verbatim.")
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let run bench_path baseline_path update =
    let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
    let parse path =
      match Obs.Json.of_string (read_file path) with
      | Ok j -> j
      | Error msg -> die "%s: unparseable JSON (%s)" path msg
    in
    let bench = parse bench_path in
    let baseline = parse baseline_path in
    let number j = match Obs.Json.get_float j with
      | Some v -> Some v
      | None -> Option.map float_of_int (Obs.Json.get_int j)
    in
    (* A metric's current value: the summary's gauges section first, then
       counters, then the top level (wall_s). *)
    let current name =
      let metrics = Obs.Json.member "metrics" bench in
      let in_section s =
        Option.bind metrics (Obs.Json.member s)
        |> Fun.flip Option.bind (Obs.Json.member name)
        |> Fun.flip Option.bind number
      in
      match in_section "gauges" with
      | Some v -> Some v
      | None -> (
          match in_section "counters" with
          | Some v -> Some v
          | None -> Option.bind (Obs.Json.member name bench) number)
    in
    let entries =
      match Obs.Json.member "metrics" baseline with
      | Some (Obs.Json.Obj kvs) -> kvs
      | _ -> die "%s: no \"metrics\" object" baseline_path
    in
    (* An empty gate would pass any summary — treat it as a broken baseline,
       not a success. *)
    if entries = [] then
      die "%s: \"metrics\" is empty; refusing to pass an empty gate"
        baseline_path;
    (* Baseline numbers are kept human-readable: integers stay integral, the
       rest rounds to three significant digits (measurements carry no more). *)
    let render v =
      if Float.is_integer v && Float.abs v < 1e6 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%.3g" v
    in
    if update then begin
      (* Refresh values in place; bands, caps, the comment and any other
         top-level keys pass through untouched so the file stays reviewable
         as a diff of numbers. *)
      let refreshed = ref 0 in
      let entries' =
        List.map
          (fun (name, spec) ->
            match Obs.Json.member "max_abs" spec with
            | Some _ -> (name, spec)  (* a policy cap, not a measurement *)
            | None -> (
                match current name with
                | None ->
                    die "%s: metric %S missing from %s; not updating" bench_path
                      name bench_path
                | Some v ->
                    (match Option.bind (Obs.Json.member "value" spec) number with
                    | Some old when old <> v ->
                        incr refreshed;
                        Printf.printf "update %-45s %s -> %s\n" name
                          (render old) (render v)
                    | Some _ -> ()
                    | None ->
                        die "%s: metric %S lacks numeric \"value\""
                          baseline_path name);
                    let spec' =
                      match spec with
                      | Obs.Json.Obj kvs ->
                          Obs.Json.Obj
                            (List.map
                               (fun (k, j) ->
                                 if k = "value" then
                                   (k, Obs.Json.Float
                                         (float_of_string (render v)))
                                 else (k, j))
                               kvs)
                      | _ -> die "%s: metric %S is not an object" baseline_path
                               name
                    in
                    (name, spec')))
          entries
      in
      let top =
        match baseline with
        | Obs.Json.Obj kvs ->
            List.map
              (fun (k, j) ->
                if k = "metrics" then (k, Obs.Json.Obj entries') else (k, j))
              kvs
        | _ -> die "%s: not a JSON object" baseline_path
      in
      (* Hand-rolled layout matching the committed style: one metric per
         line, so refreshes diff line-by-line. *)
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      let n_top = List.length top in
      List.iteri
        (fun i (k, j) ->
          let sep = if i = n_top - 1 then "" else "," in
          match (k, j) with
          | "metrics", Obs.Json.Obj ms ->
              Buffer.add_string buf "  \"metrics\": {\n";
              let n = List.length ms in
              List.iteri
                (fun i (name, spec) ->
                  let fields =
                    match spec with
                    | Obs.Json.Obj kvs ->
                        List.map
                          (fun (f, v) ->
                            Printf.sprintf "\"%s\": %s" f
                              (match number v with
                              | Some x -> render x
                              | None -> Obs.Json.to_string v))
                          kvs
                    | _ -> [ Obs.Json.to_string spec ]
                  in
                  Buffer.add_string buf
                    (Printf.sprintf "    \"%s\": { %s }%s\n" name
                       (String.concat ", " fields)
                       (if i = n - 1 then "" else ",")))
                ms;
              Buffer.add_string buf (Printf.sprintf "  }%s\n" sep)
          | _ ->
              Buffer.add_string buf
                (Printf.sprintf "  \"%s\": %s%s\n" k (Obs.Json.to_string j) sep))
        top;
      Buffer.add_string buf "}\n";
      let oc = open_out_bin baseline_path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Buffer.contents buf));
      Printf.printf "%s: refreshed %d of %d metric value(s) from %s\n"
        baseline_path !refreshed (List.length entries') bench_path
    end
    else begin
    let failures = ref 0 in
    let missing = ref [] in
    List.iter
      (fun (name, spec) ->
        let field f =
          match Option.bind (Obs.Json.member f spec) number with
          | Some v -> v
          | None -> die "%s: metric %S lacks numeric %S" baseline_path name f
        in
        match (current name, Obs.Json.member "max_abs" spec) with
        | None, _ ->
            incr failures;
            missing := name :: !missing;
            Printf.printf "FAIL %-45s missing from %s\n" name bench_path
        | Some v, Some _ ->
            (* Absolute cap: for metrics whose healthy value is ~0 (the
               allocation meters), a ratio against the baseline is
               numerically meaningless — gate on the ceiling itself. *)
            let cap = field "max_abs" in
            if v <= cap then
              Printf.printf "ok   %-45s %g (cap %g)\n" name v cap
            else begin
              incr failures;
              Printf.printf "FAIL %-45s %g exceeds cap %g\n" name v cap
            end
        | Some v, None -> (
            let expected = field "value" in
            let min_ratio = field "min_ratio"
            and max_ratio = field "max_ratio" in
            if expected = 0.0 then
              (* No meaningful ratio; require an exact zero. *)
              if v = 0.0 then Printf.printf "ok   %-45s 0 (= baseline)\n" name
              else begin
                incr failures;
                Printf.printf "FAIL %-45s %g vs baseline 0\n" name v
              end
            else
              let ratio = v /. expected in
              if ratio >= min_ratio && ratio <= max_ratio then
                Printf.printf
                  "ok   %-45s %g (%.2fx of baseline, band %.2f-%.2f)\n" name v
                  ratio min_ratio max_ratio
              else begin
                incr failures;
                Printf.printf
                  "FAIL %-45s %g (%.2fx of baseline %g, band %.2f-%.2f)\n" name
                  v ratio expected min_ratio max_ratio
              end))
      entries;
    if !failures > 0 then begin
      (* Missing metrics also go to stderr by name: a truncated summary must
         fail the gate as loudly as an out-of-band one. *)
      List.iter
        (fun name ->
          Printf.eprintf "check-bench: metric %S missing from %s\n" name
            bench_path)
        (List.rev !missing);
      Printf.printf "%d metric(s) out of tolerance (%d missing)\n" !failures
        (List.length !missing);
      exit 1
    end
    else
      Printf.printf "all %d metric(s) within tolerance\n" (List.length entries)
    end
  in
  Cmd.v (Cmd.info "check-bench" ~doc)
    Term.(const run $ bench_arg $ baseline_arg $ update_arg)

(* optimize *)
let optimize_cmd =
  let doc =
    "Run the Mil.Pass cleanup pipeline on a workload and report the executed \
     access-event reduction. Passes run to fixpoint in pipeline order; every \
     rewrite is observation-preserving (the optimized program is \
     differentially checked against the seed here, and a pass that cannot \
     prove a program safe refuses it with a pass.<name>.refused click rather \
     than rewriting). Writes PASSES_<workload>.json; an observation diff \
     exits non-zero."
  in
  let passes_arg =
    Arg.(value & opt (some string) None & info [ "passes" ] ~docv:"LIST"
           ~doc:"Comma-separated pass selection, run in the given order \
                 (default: the full pipeline; see `discopop optimize --help` \
                 output of a failed name for the registry).")
  in
  let emit_arg =
    Arg.(value & flag & info [ "emit" ]
           ~doc:"Print the optimized program's numbered source.")
  in
  let run name size passes emit stats trace =
    let w = or_die (find_workload name) in
    let seed = Workloads.Registry.program ?size w in
    let code =
      with_obs ~stats ~trace @@ fun () ->
      let passes =
        Option.map
          (fun s -> String.split_on_char ',' s |> List.map String.trim
                    |> List.filter (fun x -> x <> ""))
          passes
      in
      let report = or_die (Mil.Pass.run ?passes seed) in
      let events p =
        let r = Mil.Interp.run p in
        r.Mil.Interp.r_stats.reads + r.Mil.Interp.r_stats.writes
      in
      let before = events seed and after = events report.program in
      let ratio = float_of_int after /. float_of_int (max 1 before) in
      let diffs =
        Transform.Validate.diff_observations
          (Transform.Validate.observe seed)
          (Transform.Validate.observe report.program)
      in
      let refused = not (Mil.Pass.sequential_program seed) in
      Printf.printf "# optimize %s (size %d)\n" w.name
        (match size with Some s -> s | None -> w.default_size);
      List.iter
        (fun (p, n) -> Printf.printf "pass %-10s %d rewrite(s)\n" p n)
        report.per_pass;
      Printf.printf
        "%d rewrite(s) in %d round(s); executed access events %d -> %d \
         (ratio %.3f)%s\n"
        report.changes report.rounds before after ratio
        (if refused then
           " [sync constructs: restructuring passes refused]"
         else "");
      List.iter (Printf.printf "OBSERVATION DIFF: %s\n") diffs;
      if emit then
        Printf.printf "\n%s\n" (Mil.Pretty.render_program report.program);
      let path = Printf.sprintf "PASSES_%s.json" w.name in
      let json =
        Obs.Json.Obj
          [ ("workload", Obs.Json.String w.name);
            ( "size",
              Obs.Json.Int
                (match size with Some s -> s | None -> w.default_size) );
            ( "passes",
              Obs.Json.List
                (List.map
                   (fun (p, n) ->
                     Obs.Json.Obj
                       [ ("name", Obs.Json.String p);
                         ("changes", Obs.Json.Int n) ])
                   report.per_pass) );
            ("rounds", Obs.Json.Int report.rounds);
            ("changes", Obs.Json.Int report.changes);
            ("events_before", Obs.Json.Int before);
            ("events_after", Obs.Json.Int after);
            ("event_ratio", Obs.Json.Float ratio);
            ("refused", Obs.Json.Bool refused);
            ( "observation_diffs",
              Obs.Json.List (List.map (fun d -> Obs.Json.String d) diffs) );
            ("ok", Obs.Json.Bool (diffs = [])) ]
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Obs.Json.pretty json);
          Out_channel.output_char oc '\n');
      Printf.eprintf "wrote %s\n" path;
      if diffs <> [] then 1 else 0
    in
    if code <> 0 then exit code
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(
      const run $ workload_arg $ size_arg $ passes_arg $ emit_arg $ stats_arg
      $ trace_arg)

(* parallelize *)
let parallelize_cmd =
  let doc =
    "Apply a ranked suggestion to the workload: DOALL loops become chunked \
     Par blocks with privatization and reduction rewriting, DOACROSS loops \
     pipelined chunks with locked hand-offs, SPMD/MPMD tasks Par-spawned \
     bodies. With --validate the transformed program is checked \
     differentially against the serial original (state equivalence under \
     several interleaving seeds, plus a re-profiling race check); a failed \
     validation exits non-zero."
  in
  let suggestion_arg =
    Arg.(value & opt int 0 & info [ "suggestion" ] ~docv:"K"
           ~doc:"1-based rank of the suggestion to apply (as printed by \
                 `discopop discover`); 0 applies the best transformable one.")
  in
  let chunks_arg =
    Arg.(value & opt int 4 & info [ "chunks" ] ~docv:"C"
           ~doc:"Chunk/thread count for chunked loop transforms.")
  in
  let validate_arg =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Differentially validate the transformed program; failure \
                 exits non-zero (like trace-check).")
  in
  let seeds_arg =
    Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"S"
           ~doc:"Number of scheduler seeds for --validate.")
  in
  let emit_arg =
    Arg.(value & flag & info [ "emit" ]
           ~doc:"Print the transformed program's numbered source.")
  in
  let threads_arg =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"T"
           ~doc:"Thread count assumed by the modeled-speedup metric.")
  in
  let report_out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Also write the transform report to FILE.")
  in
  let measure_arg =
    Arg.(value & flag & info [ "measure" ]
           ~doc:"Execute the transformed program on a work-stealing pool of \
                 real domains (1..--domains sweep, warmup + repetitions) and \
                 report wall-clock speedup vs the sequential original, with \
                 an output-equality check per run. Writes \
                 MEASURE_<workload>.json; unequal output exits non-zero.")
  in
  let domains_arg =
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N"
           ~doc:"Maximum domain count for the --measure sweep.")
  in
  let warmup_arg =
    Arg.(value & opt int 1 & info [ "warmup" ] ~docv:"W"
           ~doc:"Untimed warmup runs per --measure configuration.")
  in
  let reps_arg =
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"R"
           ~doc:"Timed repetitions per --measure configuration (median is \
                 reported).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print a machine-readable JSON summary to stdout instead of \
                 the human report (diagnostics still go to stderr).")
  in
  let optimize_arg =
    Arg.(value & flag & info [ "optimize" ]
           ~doc:"Run the Mil.Pass cleanup pipeline on the transformed \
                 program before validation/measurement — folds the inserted \
                 chunk-bound arithmetic and privatization residue. \
                 Observation-preserving by construction (and still covered \
                 by --validate / --measure downstream).")
  in
  let seed_list n =
    List.init n (fun k ->
        match List.nth_opt Transform.Validate.default_seeds k with
        | Some s -> s
        | None -> (k * 99991) + 17)
  in
  let run name size suggestion chunks validate seeds emit output threads
      measure domains warmup reps json optimize stats trace =
    let w = or_die (find_workload name) in
    let prog = Workloads.Registry.program ?size w in
    let code =
      with_obs ~stats ~trace @@ fun () ->
      let report = Discovery.Suggestion.analyze ~threads prog in
      let buf = Buffer.create 1024 in
      let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      out "# parallelize %s (size %d, %d chunks)\n" w.name
        (match size with Some s -> s | None -> w.default_size)
        chunks;
      (* Rejection diagnostics go to stderr so stdout stays a clean report
         (or clean JSON with --json); they are also collected for the JSON
         summary. *)
      let skipped_acc = ref [] in
      let skip (s : Discovery.Suggestion.t) reason =
        let kind = Discovery.Suggestion.kind_to_string s.kind in
        Printf.eprintf "parallelize: skipped %s @ region %d: %s\n" kind
          s.region reason;
        skipped_acc := (kind, s.region, reason) :: !skipped_acc
      in
      let json_skipped () =
        Obs.Json.List
          (List.rev_map
             (fun (kind, region, reason) ->
               Obs.Json.Obj
                 [ ("kind", Obs.Json.String kind);
                   ("region", Obs.Json.Int region);
                   ("reason", Obs.Json.String reason) ])
             !skipped_acc)
      in
      let applied =
        if suggestion = 0 then
          match Transform.Parallelize.apply_first ~chunks report with
          | Ok (t, skipped) ->
              List.iter (fun (s, e) -> skip s e) skipped;
              Ok t
          | Error skipped ->
              List.iter (fun (s, e) -> skip s e) skipped;
              Error "no transformable suggestion"
        else
          match
            List.nth_opt report.Discovery.Suggestion.suggestions
              (suggestion - 1)
          with
          | None ->
              Error
                (Printf.sprintf "no suggestion #%d (%d available)" suggestion
                   (List.length report.Discovery.Suggestion.suggestions))
          | Some s -> (
              match Transform.Parallelize.apply ~chunks report s with
              | Ok t -> Ok t
              | Error e ->
                  skip s e;
                  Error (Printf.sprintf "suggestion #%d not transformable" suggestion))
      in
      let code =
        match applied with
        | Error msg ->
            Printf.eprintf "parallelize: error: %s\n" msg;
            if json then
              print_endline
                (Obs.Json.pretty
                   (Obs.Json.Obj
                      [ ("workload", Obs.Json.String w.name);
                        ("ok", Obs.Json.Bool false);
                        ("error", Obs.Json.String msg);
                        ("skipped", json_skipped ()) ]));
            1
        | Ok t ->
            let t =
              if optimize then begin
                match Mil.Pass.run t.Transform.Parallelize.transformed with
                | Ok r ->
                    out "optimize: %d rewrite(s) in %d round(s) (%s)\n"
                      r.Mil.Pass.changes r.Mil.Pass.rounds
                      (String.concat ", "
                         (List.filter_map
                            (fun (p, n) ->
                              if n > 0 then
                                Some (Printf.sprintf "%s %d" p n)
                              else None)
                            r.Mil.Pass.per_pass));
                    { t with Transform.Parallelize.transformed = r.program }
                | Error e ->
                    Printf.eprintf "parallelize: --optimize failed: %s\n" e;
                    t
              end
              else t
            in
            out "%s" (Transform.Parallelize.plan_to_string t.plan);
            if emit then
              out "\n%s\n" (Mil.Pretty.render_program t.transformed);
            let modeled =
              List.find_opt
                (fun (s : Discovery.Suggestion.t) ->
                  s.region = t.plan.Transform.Parallelize.p_region
                  && Discovery.Suggestion.kind_to_string s.kind
                     = t.plan.Transform.Parallelize.p_kind)
                report.Discovery.Suggestion.suggestions
            in
            (match modeled with
            | Some s ->
                out "modeled speedup (Amdahl x imbalance): %.2fx\n"
                  s.score.Discovery.Ranking.combined
            | None -> ());
            let d =
              Transform.Validate.measure ~label:w.name ~original:t.original
                t.transformed
            in
            out "%s" (Transform.Validate.distribution_to_string d);
            let verdict =
              if validate then
                Some
                  (Transform.Validate.differential ~seeds:(seed_list seeds)
                     ~original:t.original ~transformed:t.transformed ())
              else None
            in
            (match verdict with
            | Some v -> out "%s" (Transform.Validate.verdict_to_string v)
            | None -> ());
            let measured =
              if measure then begin
                let m =
                  Transform.Measure.measure ~domains ~warmup ~reps ~name:w.name
                    ~original:t.original t.transformed
                in
                out "\n%s" (Transform.Measure.to_string m);
                let path = Printf.sprintf "MEASURE_%s.json" w.name in
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc
                      (Obs.Json.pretty (Transform.Measure.to_json m));
                    Out_channel.output_char oc '\n');
                Printf.eprintf "wrote %s\n" path;
                if not m.Transform.Measure.m_equal then
                  Printf.eprintf
                    "parallelize: transformed output differs from sequential \
                     under --measure\n";
                Some m
              end
              else None
            in
            if json then begin
              let fields =
                [ ("workload", Obs.Json.String w.name);
                  ( "size",
                    Obs.Json.Int
                      (match size with Some s -> s | None -> w.default_size) );
                  ("chunks", Obs.Json.Int chunks);
                  ("kind", Obs.Json.String t.plan.Transform.Parallelize.p_kind);
                  ("region", Obs.Json.Int t.plan.Transform.Parallelize.p_region);
                  ("line", Obs.Json.Int t.plan.Transform.Parallelize.p_line);
                  ( "modeled_speedup",
                    match modeled with
                    | Some s ->
                        Obs.Json.Float s.score.Discovery.Ranking.combined
                    | None -> Obs.Json.Null );
                  ( "proxy_speedup",
                    Obs.Json.Float d.Transform.Validate.d_measured_speedup );
                  ("skipped", json_skipped ()) ]
              in
              let fields =
                fields
                @ (match verdict with
                  | Some v ->
                      [ ( "validation",
                          Obs.Json.String
                            (if v.Transform.Validate.v_ok then "pass"
                             else "fail") ) ]
                  | None -> [])
                @ (match measured with
                  | Some m -> [ ("measure", Transform.Measure.to_json m) ]
                  | None -> [])
              in
              let ok =
                (match verdict with
                | Some v -> v.Transform.Validate.v_ok
                | None -> true)
                && match measured with
                   | Some m -> m.Transform.Measure.m_equal
                   | None -> true
              in
              print_endline
                (Obs.Json.pretty
                   (Obs.Json.Obj (fields @ [ ("ok", Obs.Json.Bool ok) ])))
            end;
            let validate_failed =
              match verdict with
              | Some v -> not v.Transform.Validate.v_ok
              | None -> false
            in
            let measure_failed =
              match measured with
              | Some m -> not m.Transform.Measure.m_equal
              | None -> false
            in
            if validate_failed || measure_failed then 1 else 0
      in
      if not json then print_string (Buffer.contents buf);
      (match output with
      | None -> ()
      | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Buffer.contents buf));
          Printf.eprintf "wrote %s\n" path);
      code
    in
    if code <> 0 then exit code
  in
  Cmd.v (Cmd.info "parallelize" ~doc)
    Term.(
      const run $ workload_arg $ size_arg $ suggestion_arg $ chunks_arg
      $ validate_arg $ seeds_arg $ emit_arg $ report_out_arg $ threads_arg
      $ measure_arg $ domains_arg $ warmup_arg $ reps_arg $ json_arg
      $ optimize_arg $ stats_arg $ trace_arg)

(* batch *)
let batch_cmd =
  let doc =
    "Run the full profile/CU/discovery/ranking pipeline over many workloads \
     concurrently across a bounded pool of domains, with an optional \
     content-addressed on-disk result cache (--cache DIR): a workload whose \
     program and profiler configuration are unchanged skips phase 1 \
     entirely on re-runs. A job that raises or exceeds --timeout is \
     reported as failed/timed-out without killing the batch (one retry by \
     default); any failed or timed-out job makes the exit status non-zero \
     after the full report is emitted."
  in
  let names_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD"
           ~doc:"Workloads to run (default: every registry workload, or the \
                 $(b,--suite) selection).")
  in
  let suite_arg =
    Arg.(value & opt (some string) None & info [ "suite" ] ~docv:"NAME"
           ~doc:"Run every workload of one suite (textbook, nas, starbench, \
                 bots, apps, splash2x, numerics, parsec).")
  in
  let jobs_arg =
    Arg.(value & opt int 4 & info [ "jobs" ] ~docv:"N"
           ~doc:"Concurrent jobs (pool of N domains).")
  in
  let cache_arg =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
           ~doc:"Content-addressed result cache directory (created if \
                 missing). Key = hash of the MIL program + profiler config; \
                 entries store Depfile-v2 dependences plus the serialized \
                 suggestion summary.")
  in
  let cache_max_mb_arg =
    Arg.(value & opt (some int) None & info [ "cache-max-mb" ] ~docv:"MB"
           ~doc:"Cap the cache directory at MB megabytes: after each \
                 publish, least-recently-used entries (oldest mtime; loads \
                 refresh it) are evicted until the directory fits. The \
                 just-published entry is never evicted.")
  in
  let cache_ttl_arg =
    Arg.(value & opt (some float) None & info [ "cache-ttl" ] ~docv:"SEC"
           ~doc:"Evict cache entries not written or read for SEC seconds, \
                 swept after each publish.")
  in
  let timeout_arg =
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SEC"
           ~doc:"Per-job wall-clock budget; an overrunning job is reported \
                 as timed-out.")
  in
  let retries_arg =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"K"
           ~doc:"Extra attempts per failed or timed-out job.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"OUT"
           ~doc:"Write the machine-readable batch report to OUT ($(b,-) = \
                 stdout). The human-readable table then goes to stderr, so \
                 OUT is pure JSON.")
  in
  let threads_arg =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"T"
           ~doc:"Thread count assumed by the local-speedup metric (part of \
                 the cache key).")
  in
  let run names suite jobs cache cache_max_mb cache_ttl timeout retries json
      signature skip workers threads stats trace =
    let ws =
      match names with
      | [] -> (
          match suite with
          | None -> all_workloads
          | Some s ->
              List.filter
                (fun (w : Workloads.Registry.t) -> w.suite = s)
                all_workloads)
      | names -> List.map (fun n -> or_die (find_workload n)) names
    in
    if ws = [] then
      or_die
        (Error
           (match suite with
           | Some s -> Printf.sprintf "no workloads in suite %s" s
           | None -> "no workloads selected"));
    let code =
      with_obs ~stats ~trace @@ fun () ->
      let config =
        { Pipeline.Cache.shadow = shadow_of signature; skip; workers; threads }
      in
      let cache_limits =
        Pipeline.Cache.limits ?max_mb:cache_max_mb ?ttl_s:cache_ttl ()
      in
      let job_list =
        List.map
          (Pipeline.workload_job ?cache_dir:cache ~cache_limits ~config)
          ws
      in
      let rep =
        Pipeline.run_batch ~jobs ~timeout_s:timeout ~retries job_list
      in
      (* With --json, the human table moves to stderr so stdout stays
         machine-parseable (notably `--json -`, which streams the JSON
         report itself to stdout). *)
      (match json with
      | None -> print_string (Pipeline.render rep)
      | Some _ -> prerr_string (Pipeline.render rep));
      (match json with
      | None -> ()
      | Some "-" ->
          print_string (Obs.Json.pretty (Pipeline.report_to_json ?suite rep));
          print_newline ()
      | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc
                (Obs.Json.pretty (Pipeline.report_to_json ?suite rep));
              Out_channel.output_char oc '\n');
          Printf.eprintf "wrote %s\n" path);
      if rep.Pipeline.b_failed + rep.Pipeline.b_timeout > 0 then 1 else 0
    in
    if code <> 0 then exit code
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run $ names_arg $ suite_arg $ jobs_arg $ cache_arg
      $ cache_max_mb_arg $ cache_ttl_arg $ timeout_arg $ retries_arg
      $ json_arg $ sig_arg $ skip_arg $ workers_arg $ threads_arg $ stats_arg
      $ trace_arg)

(* races *)
let races_cmd =
  let doc = "Profile a multi-threaded target and report potential data races." in
  let seeds_arg =
    Arg.(value & opt int 5 & info [ "schedules" ] ~docv:"N"
           ~doc:"Number of thread schedules to try.")
  in
  let run name size seeds trace =
    let w = or_die (find_workload name) in
    let prog = Workloads.Registry.program ?size w in
    with_obs ~stats:None ~trace @@ fun () ->
    let found = Hashtbl.create 8 in
    for seed = 1 to seeds do
      let r = Profiler.Serial.profile ~scramble_unlocked:true ~seed prog in
      List.iter (fun race -> Hashtbl.replace found race ()) r.Profiler.Serial.races
    done;
    if Hashtbl.length found = 0 then
      print_endline "no potential races observed on these schedules"
    else
      Hashtbl.iter
        (fun (var, l1, l2) () ->
          Printf.printf "potential race on %s between lines %d and %d\n" var l1 l2)
        found
  in
  Cmd.v (Cmd.info "races" ~doc)
    Term.(const run $ workload_arg $ size_arg $ seeds_arg $ trace_arg)

(* serve *)
let serve_cmd =
  let doc =
    "Run the resident profiling daemon: a hand-rolled HTTP/1.1 server that \
     accepts MIL programs over POST /profile, profiles them on a pool of \
     persistent worker domains, and answers repeat requests from an \
     in-process LRU in front of the on-disk cache (--cache DIR). \
     Every response carries an X-Trace-Id; GET /trace?id= replays one \
     request's span tree as Chrome Trace JSON from the flight recorder \
     (--flight N records, slow requests retained past --slow-threshold), \
     dumped via GET /requests and --flight-dump FILE. GET /metrics dumps \
     the observability registry as JSON (?format=prometheus for the \
     Prometheus text format); a full queue answers 429 with Retry-After; \
     a request overrunning --deadline is cancelled cooperatively and \
     answers 504. Stop with POST /shutdown, SIGINT or SIGTERM."
  in
  let port_arg =
    Arg.(value & opt int 8123 & info [ "port" ] ~docv:"P"
           ~doc:"TCP port to listen on (127.0.0.1 only; 0 = ephemeral).")
  in
  let jobs_arg =
    Arg.(value & opt int 4 & info [ "jobs" ] ~docv:"N"
           ~doc:"Worker domains handling requests concurrently.")
  in
  let queue_arg =
    Arg.(value & opt int 32 & info [ "queue" ] ~docv:"N"
           ~doc:"Pending connections admitted before load-shedding with 429.")
  in
  let deadline_arg =
    Arg.(value & opt float 30.0 & info [ "deadline" ] ~docv:"SEC"
           ~doc:"Per-request processing deadline; an overrunning profile is \
                 cancelled and answered 504.")
  in
  let cache_arg =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
           ~doc:"On-disk result cache shared with $(b,discopop batch) \
                 (same content-addressed keys).")
  in
  let cache_max_mb_arg =
    Arg.(value & opt (some int) None & info [ "cache-max-mb" ] ~docv:"MB"
           ~doc:"Cap the on-disk cache at MB megabytes (LRU-by-mtime sweep \
                 after each publish; loads refresh recency).")
  in
  let cache_ttl_arg =
    Arg.(value & opt (some float) None & info [ "cache-ttl" ] ~docv:"SEC"
           ~doc:"Evict on-disk cache entries idle for SEC seconds.")
  in
  let mem_arg =
    Arg.(value & opt int 128 & info [ "mem-cache" ] ~docv:"N"
           ~doc:"In-process LRU capacity in entries (0 disables the memory \
                 tier).")
  in
  let threads_arg =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"T"
           ~doc:"Default thread count assumed by the local-speedup metric \
                 (overridable per request with ?threads=).")
  in
  let flight_arg =
    Arg.(value & opt int 512 & info [ "flight" ] ~docv:"N"
           ~doc:"Flight-recorder window: completed request records retained \
                 for GET /trace and GET /requests.")
  in
  let slow_arg =
    Arg.(value & opt float 0.25 & info [ "slow-threshold" ] ~docv:"SEC"
           ~doc:"Service time above which a request is also retained in the \
                 slow-request ring (which fast traffic cannot evict).")
  in
  let flight_dump_arg =
    Arg.(value & opt (some string) None & info [ "flight-dump" ] ~docv:"FILE"
           ~doc:"Write both flight-recorder rings as JSON to $(docv) on \
                 shutdown.")
  in
  let run port jobs queue deadline cache cache_max_mb cache_ttl mem signature
      skip workers threads flight slow_threshold flight_dump =
    Serve.run
      { Serve.default_config with
        Serve.port; jobs; queue_capacity = queue; deadline_s = deadline;
        cache_dir = cache;
        cache_limits =
          Pipeline.Cache.limits ?max_mb:cache_max_mb ?ttl_s:cache_ttl ();
        mem_capacity = mem;
        profile =
          { Pipeline.Cache.shadow = shadow_of signature; skip; workers;
            threads };
        flight_capacity = flight; slow_threshold_s = slow_threshold;
        flight_dump }
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ port_arg $ jobs_arg $ queue_arg $ deadline_arg $ cache_arg
      $ cache_max_mb_arg $ cache_ttl_arg $ mem_arg $ sig_arg $ skip_arg
      $ workers_arg $ threads_arg $ flight_arg $ slow_arg $ flight_dump_arg)

let () =
  let doc = "DiscoPoP: discovery of potential parallelism in sequential programs" in
  let info = Cmd.info "discopop" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; source_cmd; profile_cmd; read_deps_cmd; pet_cmd; cus_cmd;
            discover_cmd; explain_cmd; optimize_cmd; parallelize_cmd;
            batch_cmd; serve_cmd; trace_check_cmd; check_bench_cmd;
            races_cmd ]))
